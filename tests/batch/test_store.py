"""Unit tests for the resumable JSONL checkpoint store."""

import json

import pytest

from repro.batch.results import TasksetEvaluation
from repro.batch.store import JsonlResultStore, config_fingerprint
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig


def make_evaluation(group_index=0):
    return TasksetEvaluation(
        group_index=group_index,
        normalized_utilization=0.42,
        num_rt_tasks=6,
        num_security_tasks=4,
        max_periods={"ids-a": 2000, "ids-b": 1700},
        schedulable={"HYDRA-C": True, "HYDRA": False},
        periods={"HYDRA-C": {"ids-a": 910, "ids-b": 1700}, "HYDRA": None},
    )


@pytest.fixture
def config():
    return ExperimentConfig(num_cores=2, tasksets_per_group=3, seed=7)


@pytest.fixture
def store(tmp_path, config):
    return JsonlResultStore(tmp_path / "sweep.jsonl", config)


class TestLifecycle:
    def test_load_creates_header_only_file(self, store):
        assert store.load() == {}
        lines = store.path.read_text().splitlines()
        assert len(lines) == 1
        header = json.loads(lines[0])
        assert header["kind"] == "header"

    def test_append_and_reload(self, store):
        store.load()
        evaluation = make_evaluation()
        store.append_chunk([(0, evaluation), (1, None), (2, evaluation)])
        reloaded = store.load()
        assert reloaded == {0: evaluation, 1: None, 2: evaluation}

    def test_failed_generation_slots_are_not_retried(self, store):
        """A ``null`` evaluation is a completed slot, not a missing one."""
        store.load()
        store.append_chunk([(5, None)])
        assert 5 in store.load()

    def test_empty_chunk_is_a_noop(self, store):
        store.load()
        before = store.path.read_bytes()
        store.append_chunk([])
        assert store.path.read_bytes() == before


class TestCorruptionHandling:
    def test_partial_trailing_line_is_truncated(self, store):
        store.load()
        store.append_chunk([(0, make_evaluation())])
        intact = store.path.read_bytes()
        with store.path.open("ab") as handle:
            handle.write(b'{"kind":"result","job":1,"eval')  # killed mid-write
        assert store.load() == {0: make_evaluation()}
        # The file was physically trimmed back to the last complete line.
        assert store.path.read_bytes() == intact

    def test_headerless_file_rejected(self, store):
        store.path.write_text('{"kind":"result","job":0,"evaluation":null}\n')
        with pytest.raises(ConfigurationError):
            store.load()

    def test_empty_file_self_heals(self, store):
        """A kill during the header write leaves an empty file; the store
        must reinitialise it instead of wedging every future resume."""
        store.path.parent.mkdir(parents=True, exist_ok=True)
        store.path.write_text("")
        assert store.load() == {}
        header = json.loads(store.path.read_text().splitlines()[0])
        assert header["kind"] == "header"

    def test_torn_header_self_heals(self, store):
        store.path.write_text('{"kind":"hea')  # no newline: torn write
        assert store.load() == {}
        evaluation = make_evaluation()
        store.append_chunk([(0, evaluation)])
        assert store.load() == {0: evaluation}

    def test_unrelated_newline_free_file_is_not_destroyed(self, store):
        """Pointing the sweep at some random user file must refuse, not
        silently replace it (only a torn *header prefix* self-heals)."""
        original = "precious user notes without trailing newline"
        store.path.write_text(original)
        with pytest.raises(ConfigurationError):
            store.load()
        assert store.path.read_text() == original

    def test_non_json_lines_raise_configuration_error(self, store):
        store.path.write_text("line one\nline two\n")
        with pytest.raises(ConfigurationError):
            store.load()
        store.path.write_text('"just a string"\n')
        with pytest.raises(ConfigurationError):
            store.load()

    def test_rejected_foreign_checkpoint_with_torn_line_is_not_mutated(
        self, tmp_path, config
    ):
        """Refusing a mismatched checkpoint must not first trim its torn
        trailing line -- rejected files are left exactly as found."""
        path = tmp_path / "foreign.jsonl"
        JsonlResultStore(path, config).load()
        with path.open("ab") as handle:
            handle.write(b'{"kind":"result","job":0,"eval')  # torn write
        before = path.read_bytes()
        other = ExperimentConfig(num_cores=4, tasksets_per_group=3, seed=7)
        with pytest.raises(ConfigurationError):
            JsonlResultStore(path, other).load()
        assert path.read_bytes() == before

    def test_unknown_record_kind_rejected(self, store):
        store.load()
        with store.path.open("a") as handle:
            handle.write('{"kind":"mystery"}\n')
        with pytest.raises(ConfigurationError):
            store.load()


class TestConfigFingerprint:
    def test_mismatched_config_rejected(self, tmp_path, config):
        path = tmp_path / "sweep.jsonl"
        JsonlResultStore(path, config).load()
        other = ExperimentConfig(num_cores=4, tasksets_per_group=3, seed=7)
        with pytest.raises(ConfigurationError):
            JsonlResultStore(path, other).load()

    def test_runtime_knobs_do_not_change_the_fingerprint(self, config):
        tweaked = ExperimentConfig(
            num_cores=config.num_cores,
            tasksets_per_group=config.tasksets_per_group,
            seed=config.seed,
            n_jobs=8,
            chunk_size=3,
            checkpoint_path="elsewhere.jsonl",
        )
        assert config_fingerprint(tweaked) == config_fingerprint(config)

    def test_result_affecting_knobs_change_the_fingerprint(self, config):
        for tweak in (
            {"num_cores": 4},
            {"tasksets_per_group": 9},
            {"seed": 8},
            {"utilization_groups": ((0.1, 0.2),)},
            {"schemes": ("HYDRA-C", "GLOBAL-TMax")},
            {"search_mode": "linear"},
        ):
            import dataclasses

            other = dataclasses.replace(config, **tweak)
            assert config_fingerprint(other) != config_fingerprint(config)

    def test_legacy_header_without_schemes_resumes_as_canonical(
        self, tmp_path, config
    ):
        """Checkpoints written before the scheme registry carry no scheme
        list; they were always the canonical four and must keep resuming."""
        import dataclasses
        import json

        path = tmp_path / "legacy.jsonl"
        JsonlResultStore(path, config).load()
        header = json.loads(path.read_text().splitlines()[0])
        del header["config"]["schemes"]
        path.write_text(json.dumps(header, separators=(",", ":")) + "\n")

        assert JsonlResultStore(path, config).load() == {}
        variant = dataclasses.replace(config, schemes=("HYDRA-C", "HYDRA-RF"))
        with pytest.raises(ConfigurationError, match="different sweep"):
            JsonlResultStore(path, variant).load()

    def test_legacy_header_without_search_mode_resumes_as_binary(
        self, tmp_path, config
    ):
        """Pre-kernel checkpoints predate ``--search-mode``; they were
        always produced by the binary Algorithm 2 search and must keep
        resuming under the default config."""
        import dataclasses
        import json

        path = tmp_path / "legacy-mode.jsonl"
        JsonlResultStore(path, config).load()
        header = json.loads(path.read_text().splitlines()[0])
        del header["config"]["search_mode"]
        path.write_text(json.dumps(header, separators=(",", ":")) + "\n")

        assert JsonlResultStore(path, config).load() == {}
        linear = dataclasses.replace(config, search_mode="linear")
        with pytest.raises(ConfigurationError, match="different sweep"):
            JsonlResultStore(path, linear).load()

    def test_resume_with_different_search_mode_rejected(self, tmp_path, config):
        """The search mode is fingerprint-relevant: a resume under the
        other Algorithm 2 mode is rejected instead of silently mixed."""
        import dataclasses

        path = tmp_path / "mode.jsonl"
        JsonlResultStore(path, config).load()
        linear = dataclasses.replace(config, search_mode="linear")
        with pytest.raises(ConfigurationError, match="different sweep"):
            JsonlResultStore(path, linear).load()

    def test_resume_with_different_scheme_selection_rejected(
        self, tmp_path, config
    ):
        """Each stored record holds one column per scheme, so silently
        mixing rows from different ``--schemes`` runs must be impossible."""
        import dataclasses

        path = tmp_path / "sweep.jsonl"
        JsonlResultStore(path, config).load()
        reordered = dataclasses.replace(
            config, schemes=tuple(reversed(config.schemes))
        )
        with pytest.raises(ConfigurationError, match="different sweep"):
            JsonlResultStore(path, reordered).load()
