"""Cross-validation of the batched evaluation service.

The batch service shares the Eq. 1 RT analysis and the greedy security
allocation across schemes, and the optimised analysis memoises interference
terms per window.  None of that may change a single result: every test here
pins equality against the frozen seed path (:mod:`repro.batch.reference`)
or against the unshared per-scheme entry points.
"""

import pytest

from repro.baselines.hydra import Hydra, PeriodPolicy
from repro.baselines.hydra_tmax import HydraTMax
from repro.batch.orchestrator import build_specs
from repro.batch.reference import reference_evaluate_one
from repro.batch.results import SCHEME_NAMES, TasksetEvaluation
from repro.batch.service import BatchDesignService, TasksetSpec
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.schedulability.partitioned import rt_tasks_by_core


@pytest.fixture(scope="module")
def cross_validation_config():
    return ExperimentConfig(
        num_cores=2,
        tasksets_per_group=2,
        utilization_groups=((0.05, 0.2), (0.4, 0.55), (0.7, 0.85)),
        seed=90125,
    )


@pytest.fixture(scope="module")
def batch_evaluations(cross_validation_config):
    service = BatchDesignService(cross_validation_config.num_cores)
    return [
        service.evaluate_spec(spec)
        for spec in build_specs(cross_validation_config)
    ]


class TestServiceMatchesSeedPath:
    def test_identical_to_frozen_reference(
        self, cross_validation_config, batch_evaluations
    ):
        """The shared-cache service is an exact refactor of the seed path."""
        for spec, batched in zip(
            build_specs(cross_validation_config), batch_evaluations
        ):
            seed_path = reference_evaluate_one(
                cross_validation_config.num_cores,
                spec.group_index,
                spec.normalized_range,
                spec.seed,
            )
            assert batched == seed_path

    def test_every_scheme_reported(self, batch_evaluations):
        for evaluation in batch_evaluations:
            assert evaluation is not None
            assert set(evaluation.schedulable) == set(SCHEME_NAMES)
            assert set(evaluation.periods) == set(SCHEME_NAMES)

    def test_accepted_schemes_provide_periods_within_bounds(
        self, batch_evaluations
    ):
        for evaluation in batch_evaluations:
            for scheme in SCHEME_NAMES:
                periods = evaluation.periods[scheme]
                if not evaluation.accepted(scheme):
                    assert periods is None
                    continue
                assert periods is not None
                for task, period in periods.items():
                    assert 0 < period <= evaluation.max_periods[task]


class TestSharedAllocation:
    def test_shared_allocation_matches_unshared_designs(
        self, cross_validation_config
    ):
        """HYDRA/HYDRA-TMax must not notice the shared allocation phase."""
        service = BatchDesignService(cross_validation_config.num_cores)
        spec = build_specs(cross_validation_config)[2]
        taskset, allocation = service.generate(spec)
        designs = service.design_all(taskset, allocation)
        for scheme_name in ("HYDRA", "HYDRA-TMax"):
            shared = designs[scheme_name]
            unshared = {
                "HYDRA": Hydra(service.platform),
                "HYDRA-TMax": HydraTMax(service.platform),
            }[scheme_name].design(taskset, allocation.mapping)
            assert shared.schedulable == unshared.schedulable
            assert shared.security_periods() == unshared.security_periods()
            assert shared.response_times == unshared.response_times
            assert shared.security_allocation == unshared.security_allocation

    def test_greedy_allocation_cannot_be_reused_by_non_greedy_policy(
        self, cross_validation_config
    ):
        service = BatchDesignService(cross_validation_config.num_cores)
        spec = build_specs(cross_validation_config)[0]
        taskset, allocation = service.generate(spec)
        greedy = Hydra(service.platform, period_policy=PeriodPolicy.GREEDY_MIN)
        rt_by_core = rt_tasks_by_core(
            taskset, allocation.mapping, service.platform
        )
        greedy_allocation = greedy.allocate_security(taskset, rt_by_core)
        assert greedy_allocation.greedy
        with pytest.raises(ConfigurationError):
            Hydra(service.platform).design(
                taskset,
                allocation.mapping,
                security_allocation=greedy_allocation,
            )


class TestServiceConfiguration:
    def test_scheme_subset(self, cross_validation_config):
        service = BatchDesignService(2, scheme_names=("HYDRA-C", "GLOBAL-TMax"))
        spec = build_specs(cross_validation_config)[0]
        evaluation = service.evaluate_spec(spec)
        assert set(evaluation.schedulable) == {"HYDRA-C", "GLOBAL-TMax"}

    def test_global_only_subset_skips_partitioned_rt_analysis(
        self, cross_validation_config, monkeypatch
    ):
        """GLOBAL-TMax ignores the partition, so a global-only service must
        not pay for the Eq. 1 analysis."""
        import repro.batch.service as service_module

        calls = []

        def counting_rt_check(*args, **kwargs):
            calls.append(args)
            raise AssertionError("rt check should not run for a global-only service")

        monkeypatch.setattr(
            service_module, "partitioned_rt_check", counting_rt_check
        )
        service = BatchDesignService(2, scheme_names=("GLOBAL-TMax",))
        spec = build_specs(cross_validation_config)[0]
        evaluation = service.evaluate_spec(spec)
        assert calls == []
        assert set(evaluation.schedulable) == {"GLOBAL-TMax"}

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigurationError):
            BatchDesignService(2, scheme_names=("HYDRA-C", "NOT-A-SCHEME"))

    def test_unknown_search_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="search mode"):
            BatchDesignService(2, search_mode="quadratic")

    def test_search_mode_reaches_the_period_search(self):
        """``search_mode`` must actually drive Algorithm 2 inside the
        plugins: identical periods either way (monotone feasibility), but
        the linear scan performs far more WCRT computations."""
        binary = BatchDesignService(2, scheme_names=("HYDRA-C",))
        linear = BatchDesignService(
            2, scheme_names=("HYDRA-C",), search_mode="linear"
        )
        spec = TasksetSpec(
            job_index=0, group_index=3, normalized_range=(0.35, 0.45), seed=77
        )
        taskset, allocation = binary.generate(spec)
        from_binary = binary.design_all(taskset, allocation)["HYDRA-C"]
        from_linear = linear.design_all(taskset, allocation)["HYDRA-C"]
        assert from_binary.schedulable and from_linear.schedulable
        assert (
            from_binary.taskset.security_period_vector()
            == from_linear.taskset.security_period_vector()
        )
        assert (
            from_linear.metadata["analysis_calls"]
            > from_binary.metadata["analysis_calls"]
        )

    def test_invalid_core_count_rejected(self):
        with pytest.raises(ConfigurationError):
            BatchDesignService(0)

    def test_exhausted_generation_budget_returns_none(self, monkeypatch):
        """Every attempt failing Eq. 1 exhausts the budget -> None slot."""
        import repro.batch.service as service_module
        from repro.errors import AllocationError

        attempts = []

        def always_fails(taskset, platform, rta_context=None):
            attempts.append(taskset)
            raise AllocationError("forced for the retry-budget test")

        monkeypatch.setattr(
            service_module, "partition_rt_tasks", always_fails
        )
        service = BatchDesignService(2, max_generation_attempts=3)
        spec = TasksetSpec(
            job_index=0, group_index=0, normalized_range=(0.3, 0.4), seed=11
        )
        assert service.generate(spec) is None
        assert len(attempts) == 3
        assert service.evaluate_spec(spec) is None


class TestEvaluationRoundTrip:
    def test_json_round_trip_is_identity(self, batch_evaluations):
        for evaluation in batch_evaluations:
            assert (
                TasksetEvaluation.from_json(evaluation.to_json()) == evaluation
            )
