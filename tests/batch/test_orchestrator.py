"""Unit tests for the chunked, resumable sweep orchestrator."""

import time

import pytest

from repro.batch.orchestrator import (
    SweepOrchestrator,
    build_specs,
    run_batch_sweep,
)
from repro.batch.store import JsonlResultStore
from repro.experiments.config import ExperimentConfig


SMALL_GROUPS = ((0.05, 0.2), (0.45, 0.6))


def small_config(**overrides):
    defaults = dict(
        num_cores=2,
        tasksets_per_group=2,
        utilization_groups=SMALL_GROUPS,
        seed=31337,
        chunk_size=3,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestBuildSpecs:
    def test_one_spec_per_slot_in_job_order(self):
        config = small_config()
        specs = build_specs(config)
        assert [spec.job_index for spec in specs] == list(range(4))
        assert [spec.group_index for spec in specs] == [0, 0, 1, 1]
        assert all(
            spec.normalized_range == SMALL_GROUPS[spec.group_index]
            for spec in specs
        )

    def test_seed_derivation_is_deterministic_and_distinct(self):
        config = small_config()
        first = build_specs(config)
        second = build_specs(config)
        assert first == second
        assert len({spec.seed for spec in first}) == len(first)

    def test_different_base_seed_changes_child_seeds(self):
        base = {spec.seed for spec in build_specs(small_config(seed=1))}
        other = {spec.seed for spec in build_specs(small_config(seed=2))}
        assert base != other


class TestProgressReporting:
    def test_progress_called_per_chunk_with_monotone_counts(self):
        config = small_config(chunk_size=3)  # 4 jobs -> chunks of 3 + 1
        events = []
        run_batch_sweep(config, progress=events.append)
        assert [event.chunk_index for event in events] == [1, 2]
        assert all(event.num_chunks == 2 for event in events)
        assert [event.completed_jobs for event in events] == [3, 4]
        assert events[-1].fraction == 1.0
        assert all(event.resumed_jobs == 0 for event in events)

    def test_resumed_jobs_reported(self, tmp_path):
        config = small_config(chunk_size=2)
        store_path = tmp_path / "sweep.jsonl"
        run_batch_sweep(config, store=JsonlResultStore(store_path, config))
        # Chop back to the first chunk and rerun.
        lines = store_path.read_bytes().splitlines(keepends=True)
        store_path.write_bytes(b"".join(lines[:3]))
        events = []
        run_batch_sweep(
            config,
            store=JsonlResultStore(store_path, config),
            progress=events.append,
        )
        assert events and all(event.resumed_jobs == 2 for event in events)
        assert events[-1].completed_jobs == 4

    def test_fully_complete_checkpoint_runs_no_chunks(self, tmp_path):
        config = small_config()
        store_path = tmp_path / "sweep.jsonl"
        first = run_batch_sweep(config, store=JsonlResultStore(store_path, config))
        before = store_path.read_bytes()
        events = []
        again = run_batch_sweep(
            config,
            store=JsonlResultStore(store_path, config),
            progress=events.append,
        )
        assert events == []
        assert store_path.read_bytes() == before
        assert tuple(again.evaluations) == tuple(first.evaluations)


class TestCheckpointPathOnConfig:
    def test_config_checkpoint_path_creates_store(self, tmp_path):
        path = tmp_path / "auto.jsonl"
        config = small_config(checkpoint_path=str(path))
        result = SweepOrchestrator(config).run()
        assert path.exists()
        reloaded = JsonlResultStore(path, config).load()
        completed = [entry for entry in reloaded.values() if entry is not None]
        assert tuple(completed) == tuple(result.evaluations)


class TestExecutorLifecycle:
    """Regression: the worker pool must be shared across chunks and shut
    down on *every* exit path of ``run()`` (it used to be possible to leak
    a freshly built executor when a chunk raised before the context
    exited)."""

    def _recording_pool_class(self, monkeypatch):
        import repro.batch.orchestrator as orchestrator_module
        from repro.exec import PersistentPool

        instances = []

        class RecordingPool(PersistentPool):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                instances.append(self)

        monkeypatch.setattr(
            orchestrator_module, "PersistentPool", RecordingPool
        )
        return instances

    def test_one_pool_serves_every_chunk_and_is_closed(self, monkeypatch):
        instances = self._recording_pool_class(monkeypatch)
        config = small_config(n_jobs=2, chunk_size=1)  # 4 chunks
        result = SweepOrchestrator(config).run()
        assert len(result.evaluations) > 0
        assert len(instances) == 1, "one persistent pool for all chunks"
        assert instances[0].closed

    def test_pool_closed_when_a_chunk_raises(self, monkeypatch):
        instances = self._recording_pool_class(monkeypatch)

        class Boom(Exception):
            pass

        def explode(_update):
            raise Boom

        config = small_config(n_jobs=2, chunk_size=1)
        with pytest.raises(Boom):
            SweepOrchestrator(config, progress=explode).run()
        assert len(instances) == 1
        assert instances[0].closed, "pool leaked on the exception path"

    def test_injected_pool_is_reused_and_left_open(self):
        from repro.exec import PersistentPool

        config = small_config(n_jobs=2)
        with PersistentPool(2) as pool:
            first = SweepOrchestrator(config, pool=pool).run()
            executor = pool._executor
            second = SweepOrchestrator(config, pool=pool).run()
            assert pool.active
            assert pool._executor is executor, "executor rebuilt needlessly"
        assert pool.closed
        assert first.evaluations == second.evaluations

    def test_campaign_pool_closed_on_exception(self, monkeypatch):
        import repro.campaign.orchestrator as campaign_module
        from repro.campaign import CampaignOrchestrator, CampaignSpec
        from repro.exec import PersistentPool

        instances = []

        class RecordingPool(PersistentPool):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                instances.append(self)

        monkeypatch.setattr(campaign_module, "PersistentPool", RecordingPool)

        class Boom(Exception):
            pass

        def explode(_update):
            raise Boom

        spec = CampaignSpec(
            schemes=("HYDRA-C",), num_trials=2, horizon=9000, n_jobs=2,
            chunk_size=1,
        )
        with pytest.raises(Boom):
            CampaignOrchestrator(spec, progress=explode).run()
        assert len(instances) == 1
        assert instances[0].closed


class TestStatsAggregation:
    """Regression (PR 7): per-worker kernel counters -- including the
    compiled/dedup ones added with the structural-dedup layer -- must
    aggregate through the ``--stats`` sink exactly as a serial run's.

    ``chunk_size=1`` pins the dedup scope: every chunk (hence every
    chunk-shared :class:`~repro.rta.dedup.StructuralCache`) holds exactly
    one slot in both executions, so the counters are comparable number by
    number, not merely in aggregate shape.
    """

    def test_worker_counters_sum_to_the_serial_runs(self):
        serial_sink: dict = {}
        worker_sink: dict = {}
        serial = run_batch_sweep(
            small_config(chunk_size=1, n_jobs=1), stats_sink=serial_sink
        )
        parallel = run_batch_sweep(
            small_config(chunk_size=1, n_jobs=2), stats_sink=worker_sink
        )
        assert parallel.evaluations == serial.evaluations
        assert worker_sink == serial_sink
        # The sink carries the PR 7 counters (not only the legacy ones).
        assert "compiled_solves" in serial_sink
        assert "dedup_verdict_hits" in serial_sink
        assert serial_sink["exact_solves"] > 0


class _Poison(Exception):
    pass


def _poison_or_marker(payload):
    """Worker body for the straggler tests: raise, or write a marker file."""
    kind, path = payload
    if kind == "poison":
        raise _Poison("poisoned payload")
    time.sleep(0.05)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("ran\n")
    return path


def _sleep_then_marker(payload):
    duration, path = payload
    time.sleep(duration)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("ran\n")
    return path


class TestMapChunkFailureDrain:
    """Regression: a failing payload used to leave the rest of the chunk
    silently running (and its exceptions swallowed) in the background."""

    def test_poisoned_payload_cancels_queued_stragglers(self, tmp_path):
        from repro.exec import PersistentPool

        # One worker serialises execution: the poison runs first, so every
        # later payload is still *queued* when the failure surfaces and
        # must be cancelled, not ground through.  A few payloads may slip
        # through -- the executor prefetches into an internal call queue
        # that cancel() cannot reach, and refills it while the failure
        # propagates -- but the bound is that prefetch depth, not the chunk
        # length: before the fix, every queued payload ran.
        payloads = [("poison", "")] + [
            ("marker", str(tmp_path / f"straggler-{i}.txt")) for i in range(6)
        ]
        with PersistentPool(max_workers=1) as pool:
            with pytest.raises(_Poison):
                pool.map_chunk(_poison_or_marker, payloads)
            # map_chunk drained before raising, so the count is already
            # final: nothing may still be running in the background.
            ran_at_raise = len(list(tmp_path.glob("straggler-*.txt")))
            assert ran_at_raise <= 3, (
                f"{ran_at_raise} queued payloads ran after the failure"
            )
            time.sleep(0.5)  # long enough for every straggler pre-fix
            ran_later = len(list(tmp_path.glob("straggler-*.txt")))
            assert ran_later == ran_at_raise, (
                "stragglers kept completing after map_chunk raised"
            )

    def test_running_straggler_is_drained_not_abandoned(self, tmp_path):
        from repro.exec import PersistentPool

        # Two workers: the long payload is already *running* when the
        # poison raises.  It cannot be cancelled, but map_chunk must wait
        # it out so no work is still in flight once the exception escapes.
        marker = tmp_path / "running.txt"
        with PersistentPool(max_workers=2) as pool:
            with pytest.raises(_Poison):
                pool.map_chunk(
                    _poison_or_marker,
                    [("marker", str(marker)), ("poison", "")],
                )
            assert marker.exists(), "running payload was abandoned mid-drain"


class TestFastClose:
    """Regression: close() used to wait for every queued slice to finish."""

    def test_close_cancels_queued_work(self):
        from repro.exec import PersistentPool

        pool = PersistentPool(max_workers=1)
        # One short task runs; five more queue up behind it.  A close that
        # waits for the queue takes ~1.8s; a cancelling close returns as
        # soon as the running task finishes.
        futures = [
            pool.submit(_sleep_then_marker, (0.3, "/dev/null"))
            for _ in range(6)
        ]
        time.sleep(0.05)  # let the first task actually start
        start = time.perf_counter()
        pool.close()
        elapsed = time.perf_counter() - start
        assert elapsed < 1.0, f"close() waited for queued work ({elapsed:.2f}s)"
        assert pool.closed
        # The executor prefetches a couple of items into its internal call
        # queue; everything behind that must have been cancelled unrun.
        assert sum(1 for future in futures if future.cancelled()) >= 3

    def test_reset_discards_executor_and_pool_stays_usable(self):
        from repro.exec import PersistentPool

        with PersistentPool(max_workers=1) as pool:
            first = pool.submit(_sleep_then_marker, (0.0, "/dev/null"))
            assert first.result() == "/dev/null"
            pool.reset()
            assert pool.active is False
            second = pool.submit(_sleep_then_marker, (0.0, "/dev/null"))
            assert second.result() == "/dev/null"
            assert pool.active
