"""Unit tests for the JSON-lines admission protocol."""

import pytest

from repro.serve.protocol import (
    QueryError,
    error_response,
    ok_response,
    parse_request,
)


class TestParseRequest:
    def test_valid_ops_parse(self):
        for op in ("ping", "stats", "design", "admit", "shutdown"):
            assert parse_request(f'{{"op": "{op}"}}')["op"] == op

    def test_id_is_preserved(self):
        assert parse_request('{"op": "ping", "id": 7}')["id"] == 7
        assert parse_request('{"op": "ping", "id": "abc"}')["id"] == "abc"

    def test_invalid_json_rejected(self):
        with pytest.raises(QueryError, match="not valid JSON"):
            parse_request('{"op": "ping"')

    def test_non_object_rejected(self):
        with pytest.raises(QueryError, match="JSON object"):
            parse_request('["op", "ping"]')

    def test_unknown_op_rejected(self):
        with pytest.raises(QueryError, match="unknown op"):
            parse_request('{"op": "frobnicate"}')
        with pytest.raises(QueryError, match="unknown op"):
            parse_request("{}")

    def test_timeout_must_be_a_positive_number(self):
        assert parse_request('{"op": "ping", "timeout": 2.5}')["timeout"] == 2.5
        for bad in ('"2"', "0", "-1", "true"):
            with pytest.raises(QueryError, match="timeout"):
                parse_request(f'{{"op": "ping", "timeout": {bad}}}')


class TestEnvelopes:
    def test_ok_response_shape(self):
        assert ok_response(3, {"pong": True}) == {
            "id": 3,
            "ok": True,
            "result": {"pong": True},
        }

    def test_error_response_shape(self):
        response = error_response(None, "timeout", "too slow")
        assert response["ok"] is False
        assert response["id"] is None
        assert response["error"] == {"type": "timeout", "message": "too slow"}
