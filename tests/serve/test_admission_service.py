"""Unit tests for the warm admission service.

The load-bearing guarantee: a warm (cache-reusing) answer is byte-identical
to the cold answer AND to the frozen ``reference_evaluate_one`` oracle --
the serve layer accelerates repeat queries, it never changes them.
"""

import json

import pytest

from repro.batch.reference import reference_evaluate_one
from repro.serve.service import AdmissionService

DESIGN_QUERY = {
    "op": "design",
    "num_cores": 2,
    "seed": 2020,
    "group_index": 0,
    "normalized_range": [0.05, 0.2],
}

FEASIBLE_ADMIT = {
    "op": "admit",
    "num_cores": 2,
    "rt_tasks": [
        {"name": "rt0", "wcet": 2, "period": 10},
        {"name": "rt1", "wcet": 3, "period": 20, "deadline": 15},
    ],
    "security_tasks": [
        {"name": "ids", "wcet": 1, "max_period": 50},
        {"name": "scan", "wcet": 2, "max_period": 100, "coverage_units": 4},
    ],
}

# Three RT tasks at 90% utilization each cannot fit on two cores.
INFEASIBLE_ADMIT = {
    "op": "admit",
    "num_cores": 2,
    "rt_tasks": [
        {"name": f"rt{i}", "wcet": 9, "period": 10} for i in range(3)
    ],
    "security_tasks": [],
}


class TestDesignParity:
    @pytest.mark.parametrize(
        "seed,group_index,normalized_range",
        [(2020, 0, (0.05, 0.2)), (77, 2, (0.45, 0.6))],
    )
    def test_cold_and_warm_answers_match_the_frozen_reference(
        self, seed, group_index, normalized_range
    ):
        service = AdmissionService()
        query = {
            "op": "design",
            "num_cores": 2,
            "seed": seed,
            "group_index": group_index,
            "normalized_range": list(normalized_range),
        }
        cold = service.handle(dict(query))
        warm = service.handle(dict(query))
        assert cold["ok"] and warm["ok"]
        assert service.context_hits == 1  # the repeat reused its context
        reference = reference_evaluate_one(
            2, group_index, normalized_range, seed
        )
        expected = reference.to_json() if reference is not None else None
        # Byte-identical, not merely equal: the serve path must persist
        # and transmit exactly what the offline sweep would record.
        assert json.dumps(cold["result"]["evaluation"], sort_keys=True) == (
            json.dumps(expected, sort_keys=True)
        )
        assert json.dumps(warm["result"]) == json.dumps(cold["result"])

    def test_cold_baseline_is_identical_with_context_reuse_disabled(self):
        warm_service = AdmissionService()
        cold_service = AdmissionService(max_contexts=0)
        for _ in range(3):
            warm = warm_service.handle(dict(DESIGN_QUERY))
            cold = cold_service.handle(dict(DESIGN_QUERY))
            assert warm["result"] == cold["result"]
        assert cold_service.context_hits == 0
        assert warm_service.context_hits == 2

    def test_distinct_queries_get_distinct_contexts(self):
        service = AdmissionService()
        service.handle(dict(DESIGN_QUERY))
        other = dict(DESIGN_QUERY, seed=21)
        service.handle(other)
        assert service.context_hits == 0
        stats = service.handle({"op": "stats"})["result"]
        assert stats["contexts"] == 2
        assert stats["services"] == 1  # same (cores, schemes, mode) engine

    def test_lru_evicts_oldest_context(self):
        service = AdmissionService(max_contexts=2)
        for seed in (1, 2, 3):
            service.handle(dict(DESIGN_QUERY, seed=seed))
        # seed=1 was evicted; re-asking it is a miss, seed=3 is a hit.
        service.handle(dict(DESIGN_QUERY, seed=1))
        assert service.context_hits == 0
        service.handle(dict(DESIGN_QUERY, seed=3))
        assert service.context_hits == 1

    def test_scheme_subset_is_honoured(self):
        service = AdmissionService()
        query = dict(DESIGN_QUERY, schemes=["HYDRA-C", "GLOBAL-TMax"])
        result = service.handle(query)["result"]
        assert set(result["evaluation"]["schedulable"]) == {
            "HYDRA-C",
            "GLOBAL-TMax",
        }


class TestAdmit:
    def test_feasible_workload_designs_every_scheme(self):
        service = AdmissionService()
        response = service.handle(dict(FEASIBLE_ADMIT))
        assert response["ok"]
        result = response["result"]
        assert result["feasible"] is True
        assert result["reason"] is None
        evaluation = result["evaluation"]
        assert set(evaluation["schedulable"]) == {
            "HYDRA-C",
            "HYDRA",
            "HYDRA-TMax",
            "GLOBAL-TMax",
        }
        assert evaluation["num_rt_tasks"] == 2
        assert evaluation["num_security_tasks"] == 2
        # This tiny workload is comfortably schedulable under HYDRA-C.
        assert evaluation["schedulable"]["HYDRA-C"] is True

    def test_infeasible_rt_partition_is_a_result_not_an_error(self):
        service = AdmissionService()
        response = service.handle(dict(INFEASIBLE_ADMIT))
        assert response["ok"]
        assert response["result"]["feasible"] is False
        assert "does not fit" in response["result"]["reason"]
        assert response["result"]["evaluation"] is None

    def test_repeat_admit_reuses_its_context_and_answer(self):
        service = AdmissionService()
        first = service.handle(dict(FEASIBLE_ADMIT))
        second = service.handle(dict(FEASIBLE_ADMIT))
        assert service.context_hits == 1
        assert json.dumps(first["result"]) == json.dumps(second["result"])

    def test_invalid_task_set_is_a_query_error(self):
        service = AdmissionService()
        bad = dict(
            FEASIBLE_ADMIT,
            rt_tasks=[{"name": "rt0", "wcet": 20, "period": 10}],
        )
        response = service.handle(bad)
        assert not response["ok"]
        assert response["error"]["type"] == "query"
        assert "invalid task set" in response["error"]["message"]


class TestErrorHandling:
    def test_missing_field_answers_a_query_error(self):
        response = AdmissionService().handle({"op": "design", "num_cores": 2})
        assert not response["ok"]
        assert response["error"]["type"] == "query"
        assert "seed" in response["error"]["message"]

    def test_unknown_scheme_answers_a_configuration_error(self):
        query = dict(DESIGN_QUERY, schemes=["NOPE"])
        response = AdmissionService().handle(query)
        assert not response["ok"]
        assert response["error"]["type"] == "configuration"
        assert "NOPE" in response["error"]["message"]

    def test_id_is_echoed_on_success_and_failure(self):
        service = AdmissionService()
        assert service.handle({"op": "ping", "id": "q-1"})["id"] == "q-1"
        bad = service.handle({"op": "design", "id": 5})
        assert bad["id"] == 5

    def test_handle_line_answers_malformed_json(self):
        response = AdmissionService().handle_line('{"op": ')
        assert not response["ok"]
        assert response["error"]["type"] == "query"

    def test_stats_counts_queries(self):
        service = AdmissionService()
        service.handle({"op": "ping"})
        service.handle(dict(DESIGN_QUERY))
        stats = service.handle({"op": "stats"})["result"]
        assert stats["queries"] == 3
        assert stats["kernel"]["exact_solves"] >= 0

    def test_evicted_contexts_keep_their_kernel_counters(self):
        """Regression (PR 7): ``stats`` merged only the *live* LRU contexts,
        so evicting a context silently dropped its counters -- a daemon's
        kernel totals could even shrink between two ``stats`` queries.
        Evicted counters must retire into the aggregate instead."""
        tiny = AdmissionService(max_contexts=1)
        roomy = AdmissionService(max_contexts=8)
        for seed in (1, 2, 3):
            tiny.handle(dict(DESIGN_QUERY, seed=seed))
            roomy.handle(dict(DESIGN_QUERY, seed=seed))
        tiny_kernel = tiny.handle({"op": "stats"})["result"]["kernel"]
        roomy_kernel = roomy.handle({"op": "stats"})["result"]["kernel"]
        assert tiny_kernel["exact_solves"] > 0
        assert tiny_kernel == roomy_kernel
