"""Integration tests for the ``hydra-c serve`` daemon.

Each test talks to a real daemon subprocess over its Unix socket -- the
same deployment shape the CI smoke stage drives -- covering the query
round-trip, per-query timeouts, error answers, both drain paths
(``shutdown`` op and SIGTERM) and the multi-process dispatch mode.
"""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.batch.reference import reference_evaluate_one
from repro.serve import ServeClient

SRC = str(Path(__file__).resolve().parents[2] / "src")

DESIGN_QUERY = {
    "op": "design",
    "num_cores": 2,
    "seed": 2020,
    "normalized_range": [0.05, 0.2],
}


def start_daemon(socket_path, *extra_args):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--socket",
            str(socket_path),
            "--quiet",
            *extra_args,
        ],
        env=env,
    )


@pytest.fixture
def daemon(tmp_path):
    socket_path = tmp_path / "serve.sock"
    process = start_daemon(socket_path)
    try:
        yield socket_path, process
    finally:
        if process.poll() is None:
            process.terminate()
            process.wait(timeout=30)


class TestRoundTrip:
    def test_full_session(self, daemon):
        socket_path, process = daemon
        with ServeClient.connect(socket_path) as client:
            assert client.request({"op": "ping", "id": 1}) == {
                "id": 1,
                "ok": True,
                "result": {"pong": True},
            }

            # A design query answers exactly what the frozen oracle says.
            response = client.request(dict(DESIGN_QUERY, id=2))
            assert response["ok"] and response["id"] == 2
            reference = reference_evaluate_one(2, 0, (0.05, 0.2), 2020)
            assert response["result"]["evaluation"] == reference.to_json()

            # The warm repeat is byte-identical.
            repeat = client.request(dict(DESIGN_QUERY, id=3))
            assert json.dumps(repeat["result"]) == json.dumps(
                response["result"]
            )

            # An infeasible admission is an answer, not an error.
            infeasible = client.request(
                {
                    "op": "admit",
                    "num_cores": 2,
                    "rt_tasks": [
                        {"name": f"rt{i}", "wcet": 9, "period": 10}
                        for i in range(3)
                    ],
                    "security_tasks": [],
                }
            )
            assert infeasible["ok"]
            assert infeasible["result"]["feasible"] is False

            # Malformed queries are answered with ok=false, and the
            # connection keeps working afterwards.
            bad = client.request({"op": "design"})
            assert not bad["ok"] and bad["error"]["type"] == "query"
            stats = client.request({"op": "stats"})
            assert stats["ok"] and stats["result"]["queries"] >= 4
        assert process.poll() is None  # daemon survives client disconnect

    def test_timeout_answers_and_connection_stays_usable(self, daemon):
        socket_path, _process = daemon
        with ServeClient.connect(socket_path) as client:
            response = client.request(
                dict(DESIGN_QUERY, timeout=1e-6, id="slow")
            )
            assert not response["ok"]
            assert response["error"]["type"] == "timeout"
            assert response["id"] == "slow"
            assert client.request({"op": "ping"})["ok"]

    def test_shutdown_op_drains_and_exits_zero(self, daemon):
        socket_path, process = daemon
        with ServeClient.connect(socket_path) as client:
            response = client.request({"op": "shutdown"})
            assert response["ok"] and response["result"]["stopping"]
        assert process.wait(timeout=30) == 0
        assert not socket_path.exists()

    def test_sigterm_drains_and_exits_zero(self, daemon):
        socket_path, process = daemon
        with ServeClient.connect(socket_path) as client:
            assert client.request({"op": "ping"})["ok"]
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30) == 0
        assert not socket_path.exists()


class TestStdio:
    @pytest.mark.parametrize("via_pipe", [True, False])
    def test_stdio_session_answers_and_exits_zero(self, tmp_path, via_pipe):
        """--stdio works whether stdin/stdout are pipes or regular files."""
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        queries = "\n".join(
            [
                '{"op": "ping", "id": 1}',
                json.dumps(dict(DESIGN_QUERY, id=2)),
                '{"op": "shutdown", "id": 3}',
            ]
        )
        command = [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--stdio",
            "--quiet",
        ]
        if via_pipe:
            completed = subprocess.run(
                command,
                env=env,
                input=queries,
                capture_output=True,
                text=True,
                timeout=120,
            )
            stdout = completed.stdout
        else:
            in_path = tmp_path / "queries.txt"
            out_path = tmp_path / "answers.txt"
            in_path.write_text(queries + "\n")
            with in_path.open("rb") as stdin, out_path.open("wb") as stdout_f:
                completed = subprocess.run(
                    command,
                    env=env,
                    stdin=stdin,
                    stdout=stdout_f,
                    stderr=subprocess.PIPE,
                    timeout=120,
                )
            stdout = out_path.read_text()
        assert completed.returncode == 0, completed.stderr
        responses = [json.loads(line) for line in stdout.splitlines()]
        assert responses[0] == {"id": 1, "ok": True, "result": {"pong": True}}
        reference = reference_evaluate_one(2, 0, (0.05, 0.2), 2020)
        assert responses[1]["result"]["evaluation"] == reference.to_json()
        assert responses[2]["result"] == {"stopping": True}


class TestWorkerProcesses:
    def test_jobs_mode_answers_identically(self, tmp_path):
        socket_path = tmp_path / "serve-jobs.sock"
        process = start_daemon(socket_path, "--jobs", "2")
        try:
            with ServeClient.connect(socket_path) as client:
                first = client.request(dict(DESIGN_QUERY))
                second = client.request(dict(DESIGN_QUERY))
                assert first["ok"] and second["ok"]
                reference = reference_evaluate_one(2, 0, (0.05, 0.2), 2020)
                assert first["result"]["evaluation"] == reference.to_json()
                assert second["result"] == first["result"]
                client.request({"op": "shutdown"})
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)


class TestQueryCli:
    def test_hydra_c_query_round_trip(self, daemon):
        socket_path, _process = daemon
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        completed = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "query",
                "--socket",
                str(socket_path),
                '{"op": "ping", "id": 42}',
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert completed.returncode == 0, completed.stderr
        response = json.loads(completed.stdout.strip())
        assert response == {"id": 42, "ok": True, "result": {"pong": True}}

    def test_hydra_c_query_exits_nonzero_on_error_response(self, daemon):
        socket_path, _process = daemon
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        completed = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "query",
                "--socket",
                str(socket_path),
                '{"op": "design"}',
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert completed.returncode == 1
        response = json.loads(completed.stdout.strip())
        assert not response["ok"]
