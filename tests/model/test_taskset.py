"""Unit tests for the TaskSet container."""

import pytest

from repro.model import RealTimeTask, SecurityTask, TaskSet
from repro.model.priority import RT_PRIORITY_BAND


def make_taskset():
    return TaskSet.create(
        [
            RealTimeTask(name="slow", wcet=10, period=100),
            RealTimeTask(name="fast", wcet=1, period=10),
        ],
        [
            SecurityTask(name="ids-a", wcet=2, max_period=50),
            SecurityTask(name="ids-b", wcet=3, max_period=80),
        ],
    )


class TestConstruction:
    def test_create_assigns_rm_priorities(self):
        taskset = make_taskset()
        assert taskset.rt_task("fast").priority < taskset.rt_task("slow").priority

    def test_create_assigns_security_priorities_in_listed_order(self):
        taskset = make_taskset()
        assert (
            taskset.security_task("ids-a").priority
            < taskset.security_task("ids-b").priority
        )

    def test_security_priorities_above_rt_band(self):
        taskset = make_taskset()
        for task in taskset.security_tasks:
            assert task.priority >= RT_PRIORITY_BAND

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            TaskSet.create(
                [RealTimeTask(name="x", wcet=1, period=10)],
                [SecurityTask(name="x", wcet=1, max_period=20)],
            )

    def test_missing_priority_rejected_by_raw_constructor(self):
        with pytest.raises(ValueError, match="no priority"):
            TaskSet(rt_tasks=(RealTimeTask(name="x", wcet=1, period=10),))

    def test_rt_must_outrank_security(self):
        rt = RealTimeTask(name="rt", wcet=1, period=10, priority=5)
        sec = SecurityTask(name="sec", wcet=1, max_period=20, priority=3)
        with pytest.raises(ValueError, match="higher priority"):
            TaskSet(rt_tasks=(rt,), security_tasks=(sec,))

    def test_empty_taskset_allowed(self):
        assert len(TaskSet.create([], [])) == 0


class TestAccessors:
    def test_lookup_by_name(self):
        taskset = make_taskset()
        assert taskset.task("fast").wcet == 1
        assert taskset.rt_task("slow").period == 100
        assert taskset.security_task("ids-b").max_period == 80

    def test_unknown_name_raises(self):
        taskset = make_taskset()
        with pytest.raises(KeyError):
            taskset.task("nope")
        with pytest.raises(KeyError):
            taskset.rt_task("ids-a")
        with pytest.raises(KeyError):
            taskset.security_task("fast")

    def test_len_and_iteration(self):
        taskset = make_taskset()
        assert len(taskset) == 4
        assert {task.name for task in taskset} == {"slow", "fast", "ids-a", "ids-b"}

    def test_priority_ordered_views(self):
        taskset = make_taskset()
        assert [t.name for t in taskset.rt_by_priority()] == ["fast", "slow"]
        assert [t.name for t in taskset.security_by_priority()] == ["ids-a", "ids-b"]

    def test_higher_and_lower_priority_security(self):
        taskset = make_taskset()
        ids_b = taskset.security_task("ids-b")
        assert [t.name for t in taskset.higher_priority_security(ids_b)] == ["ids-a"]
        ids_a = taskset.security_task("ids-a")
        assert [t.name for t in taskset.lower_priority_security(ids_a)] == ["ids-b"]


class TestUtilization:
    def test_rt_utilization(self):
        taskset = make_taskset()
        assert taskset.rt_utilization == pytest.approx(0.1 + 0.1)

    def test_security_min_utilization(self):
        taskset = make_taskset()
        assert taskset.security_min_utilization == pytest.approx(2 / 50 + 3 / 80)

    def test_minimum_utilization_is_paper_u(self):
        taskset = make_taskset()
        assert taskset.minimum_utilization == pytest.approx(
            taskset.rt_utilization + taskset.security_min_utilization
        )

    def test_normalized_utilization(self):
        taskset = make_taskset()
        assert taskset.normalized_utilization(2) == pytest.approx(
            taskset.minimum_utilization / 2
        )

    def test_normalized_utilization_rejects_bad_cores(self):
        with pytest.raises(ValueError):
            make_taskset().normalized_utilization(0)


class TestTransformations:
    def test_with_security_periods(self):
        taskset = make_taskset()
        adapted = taskset.with_security_periods({"ids-a": 10, "ids-b": 40})
        assert adapted.security_task("ids-a").period == 10
        assert adapted.security_task("ids-b").period == 40
        # original untouched
        assert taskset.security_task("ids-a").period is None

    def test_with_security_periods_partial(self):
        taskset = make_taskset()
        adapted = taskset.with_security_periods({"ids-a": 10})
        assert adapted.security_task("ids-a").period == 10
        assert adapted.security_task("ids-b").period is None

    def test_with_security_periods_unknown_task(self):
        with pytest.raises(KeyError):
            make_taskset().with_security_periods({"ghost": 10})

    def test_with_security_at_max_period(self):
        pinned = make_taskset().with_security_at_max_period()
        assert pinned.security_task("ids-a").period == 50
        assert pinned.security_task("ids-b").period == 80

    def test_without_security_periods(self):
        taskset = make_taskset().with_security_at_max_period()
        cleared = taskset.without_security_periods()
        assert all(task.period is None for task in cleared.security_tasks)

    def test_period_vectors(self):
        taskset = make_taskset().with_security_periods({"ids-a": 10})
        assert taskset.security_period_vector() == {"ids-a": 10, "ids-b": None}
        assert taskset.security_max_period_vector() == {"ids-a": 50, "ids-b": 80}

    def test_summary_contains_every_task(self):
        text = make_taskset().summary()
        for name in ("slow", "fast", "ids-a", "ids-b"):
            assert name in text
