"""Unit tests for the platform model."""

import pytest

from repro.model.platform import Core, Platform


class TestCore:
    def test_default_name(self):
        assert Core(index=1).name == "core1"

    def test_custom_name(self):
        assert Core(index=0, name="big").name == "big"

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            Core(index=-1)


class TestPlatform:
    def test_cores_enumeration(self):
        platform = Platform(num_cores=3)
        assert len(platform) == 3
        assert [core.index for core in platform] == [0, 1, 2]

    def test_core_lookup(self):
        platform = Platform(num_cores=2)
        assert platform.core(1).name == "core1"

    def test_core_lookup_out_of_range(self):
        with pytest.raises(IndexError):
            Platform(num_cores=2).core(2)

    def test_dual_and_quad_constructors(self):
        assert Platform.dual_core().num_cores == 2
        assert Platform.quad_core().num_cores == 4

    @pytest.mark.parametrize("cores", [0, -1])
    def test_invalid_core_count(self, cores):
        with pytest.raises(ValueError):
            Platform(num_cores=cores)

    def test_non_integer_core_count(self):
        with pytest.raises(TypeError):
            Platform(num_cores=2.0)

    def test_invalid_tick_duration(self):
        with pytest.raises(ValueError):
            Platform(num_cores=2, tick_duration_ms=0)
