"""Unit tests for priority assignment helpers."""

import pytest

from repro.model.priority import (
    RT_PRIORITY_BAND,
    assign_rate_monotonic_priorities,
    assign_security_priorities_by_index,
    higher_priority,
    lower_priority,
    sort_by_priority,
)
from repro.model.tasks import RealTimeTask, SecurityTask


class TestRateMonotonic:
    def test_shorter_period_gets_higher_priority(self):
        nav = RealTimeTask(name="nav", wcet=240, period=500)
        cam = RealTimeTask(name="camera", wcet=1120, period=5000)
        assigned = assign_rate_monotonic_priorities([cam, nav])
        by_name = {task.name: task.priority for task in assigned}
        assert by_name["nav"] < by_name["camera"]

    def test_input_order_preserved(self):
        tasks = [
            RealTimeTask(name="b", wcet=1, period=20),
            RealTimeTask(name="a", wcet=1, period=10),
        ]
        assigned = assign_rate_monotonic_priorities(tasks)
        assert [task.name for task in assigned] == ["b", "a"]

    def test_ties_broken_by_name(self):
        tasks = [
            RealTimeTask(name="zeta", wcet=1, period=10),
            RealTimeTask(name="alpha", wcet=1, period=10),
        ]
        by_name = {
            task.name: task.priority
            for task in assign_rate_monotonic_priorities(tasks)
        }
        assert by_name["alpha"] < by_name["zeta"]

    def test_duplicate_names_rejected(self):
        tasks = [
            RealTimeTask(name="x", wcet=1, period=10),
            RealTimeTask(name="x", wcet=1, period=20),
        ]
        with pytest.raises(ValueError):
            assign_rate_monotonic_priorities(tasks)

    def test_priorities_are_dense_from_zero(self):
        tasks = [
            RealTimeTask(name=f"t{i}", wcet=1, period=10 * (i + 1)) for i in range(5)
        ]
        priorities = sorted(
            task.priority for task in assign_rate_monotonic_priorities(tasks)
        )
        assert priorities == list(range(5))


class TestSecurityPriorities:
    def test_listed_order(self):
        tasks = [
            SecurityTask(name="first", wcet=1, max_period=10),
            SecurityTask(name="second", wcet=1, max_period=10),
        ]
        assigned = assign_security_priorities_by_index(tasks)
        assert assigned[0].priority < assigned[1].priority

    def test_band_offset(self):
        tasks = [SecurityTask(name="only", wcet=1, max_period=10)]
        assert assign_security_priorities_by_index(tasks)[0].priority == RT_PRIORITY_BAND


class TestComparisons:
    def test_higher_and_lower(self):
        high = RealTimeTask(name="high", wcet=1, period=10, priority=0)
        low = RealTimeTask(name="low", wcet=1, period=20, priority=1)
        assert higher_priority(high, low)
        assert lower_priority(low, high)
        assert not higher_priority(low, high)

    def test_unassigned_priority_raises(self):
        unassigned = RealTimeTask(name="u", wcet=1, period=10)
        other = RealTimeTask(name="o", wcet=1, period=10, priority=0)
        with pytest.raises(ValueError):
            higher_priority(unassigned, other)

    def test_sort_by_priority(self):
        tasks = [
            RealTimeTask(name="c", wcet=1, period=10, priority=2),
            RealTimeTask(name="a", wcet=1, period=10, priority=0),
            RealTimeTask(name="b", wcet=1, period=10, priority=1),
        ]
        assert [task.name for task in sort_by_priority(tasks)] == ["a", "b", "c"]
