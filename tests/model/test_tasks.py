"""Unit tests for the task value objects."""

import pytest

from repro.model.tasks import Job, RealTimeTask, SecurityTask


class TestRealTimeTask:
    def test_basic_construction(self):
        task = RealTimeTask(name="nav", wcet=240, period=500)
        assert task.wcet == 240
        assert task.period == 500
        assert task.deadline == 500  # implicit deadline defaults to the period
        assert task.priority is None

    def test_utilization(self):
        task = RealTimeTask(name="nav", wcet=240, period=500)
        assert task.utilization == pytest.approx(0.48)

    def test_density_uses_deadline(self):
        task = RealTimeTask(name="t", wcet=10, period=100, deadline=50)
        assert task.density == pytest.approx(0.2)

    def test_is_real_time_flag(self):
        assert RealTimeTask(name="t", wcet=1, period=2).is_real_time is True

    def test_explicit_constrained_deadline(self):
        task = RealTimeTask(name="t", wcet=5, period=20, deadline=10)
        assert task.deadline == 10

    def test_deadline_larger_than_period_rejected(self):
        with pytest.raises(ValueError, match="constrained deadline"):
            RealTimeTask(name="t", wcet=5, period=20, deadline=25)

    def test_wcet_exceeding_deadline_rejected(self):
        with pytest.raises(ValueError, match="trivially unschedulable"):
            RealTimeTask(name="t", wcet=15, period=20, deadline=10)

    @pytest.mark.parametrize("wcet", [0, -1])
    def test_non_positive_wcet_rejected(self, wcet):
        with pytest.raises(ValueError):
            RealTimeTask(name="t", wcet=wcet, period=10)

    def test_non_integer_wcet_rejected(self):
        with pytest.raises(TypeError):
            RealTimeTask(name="t", wcet=1.5, period=10)

    def test_boolean_wcet_rejected(self):
        with pytest.raises(TypeError):
            RealTimeTask(name="t", wcet=True, period=10)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            RealTimeTask(name="", wcet=1, period=10)

    def test_with_priority_returns_new_object(self):
        task = RealTimeTask(name="t", wcet=1, period=10)
        prioritized = task.with_priority(3)
        assert prioritized.priority == 3
        assert task.priority is None
        assert prioritized is not task

    def test_frozen(self):
        task = RealTimeTask(name="t", wcet=1, period=10)
        with pytest.raises(AttributeError):
            task.wcet = 2


class TestSecurityTask:
    def test_basic_construction(self):
        task = SecurityTask(name="ids", wcet=5, max_period=100)
        assert task.period is None
        assert task.effective_period == 100
        assert task.is_real_time is False

    def test_effective_period_prefers_assigned(self):
        task = SecurityTask(name="ids", wcet=5, max_period=100, period=40)
        assert task.effective_period == 40

    def test_utilization_at_effective_period(self):
        task = SecurityTask(name="ids", wcet=5, max_period=100, period=50)
        assert task.utilization == pytest.approx(0.1)
        assert task.min_utilization == pytest.approx(0.05)

    def test_monitoring_frequency(self):
        task = SecurityTask(name="ids", wcet=5, max_period=100, period=20)
        assert task.monitoring_frequency == pytest.approx(0.05)

    def test_with_period(self):
        task = SecurityTask(name="ids", wcet=5, max_period=100)
        assigned = task.with_period(60)
        assert assigned.period == 60
        assert task.period is None

    def test_without_period(self):
        task = SecurityTask(name="ids", wcet=5, max_period=100, period=60)
        assert task.without_period().period is None

    def test_at_max_period(self):
        task = SecurityTask(name="ids", wcet=5, max_period=100)
        assert task.at_max_period().period == 100

    def test_period_above_max_rejected(self):
        with pytest.raises(ValueError, match="exceeds max_period"):
            SecurityTask(name="ids", wcet=5, max_period=100, period=120)

    def test_period_below_wcet_rejected(self):
        with pytest.raises(ValueError, match="smaller than wcet"):
            SecurityTask(name="ids", wcet=5, max_period=100, period=4)

    def test_wcet_above_max_period_rejected(self):
        with pytest.raises(ValueError, match="no feasible period"):
            SecurityTask(name="ids", wcet=200, max_period=100)

    def test_coverage_units_must_be_positive(self):
        with pytest.raises(ValueError):
            SecurityTask(name="ids", wcet=5, max_period=100, coverage_units=0)


class TestJob:
    def test_job_id(self):
        job = Job(task_name="camera", index=3, release_time=15000, wcet=1120)
        assert job.job_id == "camera#3"

    def test_deadline_must_follow_release(self):
        with pytest.raises(ValueError):
            Job(task_name="t", index=0, release_time=10, wcet=1, absolute_deadline=10)

    def test_negative_release_rejected(self):
        with pytest.raises(ValueError):
            Job(task_name="t", index=0, release_time=-1, wcet=1)
