"""Unit tests for time helpers."""

import pytest

from repro.model.time_utils import ceil_div, hyperperiod, lcm, ms_to_ticks, ticks_to_ms


class TestLcm:
    def test_basic(self):
        assert lcm([4, 6]) == 12

    def test_single_value(self):
        assert lcm([7]) == 7

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            lcm([])

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            lcm([4, 0])


class TestHyperperiod:
    def test_rover_periods(self):
        assert hyperperiod([500, 5000]) == 5000

    def test_cap(self):
        assert hyperperiod([7, 11, 13], cap=100) == 100

    def test_cap_not_reached(self):
        assert hyperperiod([2, 3], cap=100) == 6

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            hyperperiod([2, 3], cap=0)


class TestConversions:
    def test_ms_to_ticks_rounds_up(self):
        assert ms_to_ticks(1.2, tick_duration_ms=1.0) == 2

    def test_roundtrip_exact(self):
        assert ticks_to_ms(ms_to_ticks(250.0)) == 250.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            ms_to_ticks(-1)

    def test_negative_ticks_rejected(self):
        with pytest.raises(ValueError):
            ticks_to_ms(-1)


class TestCeilDiv:
    @pytest.mark.parametrize(
        "numerator,denominator,expected",
        [(7, 3, 3), (6, 3, 2), (0, 5, 0), (1, 1, 1), (10, 4, 3)],
    )
    def test_values(self, numerator, denominator, expected):
        assert ceil_div(numerator, denominator) == expected

    def test_zero_denominator_rejected(self):
        with pytest.raises(ValueError):
            ceil_div(1, 0)
