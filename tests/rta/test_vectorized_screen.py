"""Differential suite for the vectorized column layer and its execution.

Three families of guarantees, all pinned against frozen oracles:

* the :class:`~repro.rta.vectorized.ColumnScreen` filters are flip-free --
  on random columns (including zero-slack tasks, overloaded cores and
  degenerate single-task-set columns) every ACCEPT/REJECT verdict agrees
  with the exact frozen per-core analysis, and the lockstep
  :func:`~repro.rta.vectorized.partition_column` reproduces the scalar
  packing loop byte for byte;
* the warm-seeded period selection and the batched Algorithm 2 candidate
  probes return results byte-equal to the cold kernel and to
  ``repro.batch.reference``, including ``analysis_calls``;
* the persistent-pool execution cannot change results: ``n_jobs``,
  ``chunk_size`` and resume are invariant through the reused pool, and a
  crashed worker is survived by one pool rebuild.
"""

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.batch.orchestrator import SweepOrchestrator, build_specs
from repro.batch.reference import (
    reference_evaluate_one,
    reference_select_periods,
)
from repro.batch.service import BatchDesignService
from repro.core.period_selection import select_periods
from repro.errors import AllocationError
from repro.exec import PersistentPool, slice_evenly
from repro.experiments.config import ExperimentConfig
from repro.model import Platform, RealTimeTask, SecurityTask, TaskSet
from repro.partitioning.allocation import Allocation
from repro.partitioning.heuristics import partition_rt_tasks
from repro.rta import CorePeriodAssigner, RtaContext
from repro.rta.vectorized import (
    ACCEPT,
    REJECT,
    ColumnScreen,
    TaskSetArena,
    partition_column,
)
from repro.schedulability.partitioned import partitioned_rt_schedulable

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


@st.composite
def rt_tasksets(draw, max_cores=4, allow_empty=False):
    """A platform plus an RT(+security) task set with a random allocation.

    Includes zero-slack tasks (``wcet == deadline``) and overloaded cores
    (the allocation is arbitrary, so per-core utilization above one is
    routinely drawn).
    """
    num_cores = draw(st.integers(min_value=1, max_value=max_cores))
    num_rt = draw(st.integers(min_value=0 if allow_empty else 1, max_value=8))
    rt_tasks = []
    for index in range(num_rt):
        period = draw(st.integers(min_value=6, max_value=80))
        wcet = draw(st.integers(min_value=1, max_value=period))
        deadline = draw(st.integers(min_value=wcet, max_value=period))
        rt_tasks.append(
            RealTimeTask(
                name=f"rt{index}", wcet=wcet, period=period, deadline=deadline
            )
        )
    num_security = draw(st.integers(min_value=0, max_value=3))
    security = [
        SecurityTask(
            name=f"sec{index}",
            wcet=draw(st.integers(min_value=1, max_value=6)),
            max_period=draw(st.integers(min_value=60, max_value=240)),
        )
        for index in range(num_security)
    ]
    taskset = TaskSet.create(rt_tasks, security)
    allocation = {
        task.name: draw(st.integers(min_value=0, max_value=num_cores - 1))
        for task in taskset.rt_tasks
    }
    return Platform(num_cores=num_cores), taskset, allocation


@st.composite
def taskset_columns(draw):
    """A column of 1..5 task sets on one platform (incl. degenerate size 1)."""
    num_cores = draw(st.integers(min_value=1, max_value=4))
    column = []
    for position in range(draw(st.integers(min_value=1, max_value=5))):
        platform, taskset, allocation = draw(
            rt_tasksets(max_cores=num_cores)
        )
        # re-home onto the shared platform size
        allocation = {
            name: core % num_cores for name, core in allocation.items()
        }
        column.append((taskset, allocation))
    return Platform(num_cores=num_cores), column


# ---------------------------------------------------------------------------
# Column screen verdicts
# ---------------------------------------------------------------------------


class TestColumnScreenDifferential:
    @given(taskset_columns())
    @settings(max_examples=120, deadline=None)
    def test_screen_verdicts_agree_with_exact_kernel(self, data):
        platform, column = data
        tasksets = [taskset for taskset, _ in column]
        allocations = [
            Allocation(dict(allocation)) for _, allocation in column
        ]
        arena = TaskSetArena(tasksets, platform.num_cores)
        arena.with_core_assignments(allocations)
        contexts = [RtaContext(platform) for _ in tasksets]
        verdicts = ColumnScreen(arena, contexts).screen_partitioned_check()
        for (taskset, allocation), verdict in zip(column, verdicts):
            exact = partitioned_rt_schedulable(
                taskset, allocation, platform
            ).schedulable
            if verdict == ACCEPT:
                assert exact, "column screen accepted an unschedulable set"
            elif verdict == REJECT:
                assert not exact, "column screen rejected a schedulable set"

    @given(taskset_columns())
    @settings(max_examples=100, deadline=None)
    def test_partition_column_equals_scalar_packing(self, data):
        platform, column = data
        tasksets = [taskset for taskset, _ in column]
        contexts = [RtaContext(platform) for _ in tasksets]
        lockstep = partition_column(tasksets, platform, contexts)
        for taskset, result in zip(tasksets, lockstep):
            try:
                scalar = partition_rt_tasks(
                    taskset, platform, rta_context=RtaContext(platform)
                )
            except AllocationError:
                scalar = None
            if scalar is None:
                assert result is None
            else:
                assert result is not None
                assert result.mapping == scalar.mapping

    def test_screen_rejects_overloaded_single_set_column(self):
        """Degenerate one-set column with a provably overloaded core."""
        platform = Platform(num_cores=2)
        taskset = TaskSet.create(
            [
                RealTimeTask(name="a", wcet=9, period=10),
                RealTimeTask(name="b", wcet=9, period=10),
            ],
            [],
        )
        arena = TaskSetArena([taskset], 2)
        arena.with_core_assignments([Allocation({"a": 0, "b": 0})])
        verdicts = ColumnScreen(arena).screen_partitioned_check()
        assert verdicts[0] == REJECT

    def test_screen_accepts_trivial_column(self):
        platform = Platform(num_cores=2)
        taskset = TaskSet.create(
            [RealTimeTask(name="a", wcet=1, period=100)], []
        )
        arena = TaskSetArena([taskset], 2)
        arena.with_core_assignments([Allocation({"a": 0})])
        verdicts = ColumnScreen(arena).screen_partitioned_check()
        assert verdicts[0] == ACCEPT


# ---------------------------------------------------------------------------
# Warm-seeded period selection and batched candidate probes
# ---------------------------------------------------------------------------


@st.composite
def schedulable_partitions(draw):
    """A generated-and-partitioned task set (the selector's real input)."""
    seed = draw(st.integers(min_value=0, max_value=2**31))
    group = draw(st.integers(min_value=0, max_value=6))
    service = BatchDesignService(2, scheme_names=("HYDRA-C",))
    spec_range = (0.01 + 0.1 * group, 0.1 + 0.1 * group)
    from repro.batch.service import TasksetSpec

    generated = service.generate(
        TasksetSpec(
            job_index=0, group_index=group, normalized_range=spec_range, seed=seed
        )
    )
    if generated is None:
        return None
    return generated


class TestWarmStartDifferential:
    @given(schedulable_partitions())
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_warm_selection_equals_cold_and_frozen(self, generated):
        if generated is None:
            return
        taskset, allocation = generated
        platform = Platform(num_cores=2)
        warm = select_periods(
            taskset,
            allocation.mapping,
            platform,
            rta_context=RtaContext(2, warm_start=True, dedup=False),
        )
        cold = select_periods(
            taskset,
            allocation.mapping,
            platform,
            rta_context=RtaContext(2, warm_start=False),
        )
        frozen = reference_select_periods(
            taskset, allocation.mapping, platform
        )
        # Warm seeding alone shortens iterations but never skips a solve,
        # so with dedup off the comparison includes analysis_calls.
        assert warm == cold == frozen
        # The dedup profile may *skip* solves outright (probe pinning,
        # Line-8 refresh reuse), so its analysis_calls only shrink; every
        # result field stays byte-equal.
        dedup = select_periods(
            taskset,
            allocation.mapping,
            platform,
            rta_context=RtaContext(2, warm_start=True),
        )
        assert dedup.schedulable == frozen.schedulable
        assert dedup.periods == frozen.periods
        assert dedup.response_times == frozen.response_times
        assert dedup.unschedulable_task == frozen.unschedulable_task
        assert dedup.analysis_calls <= cold.analysis_calls

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_feasible_batch_equals_scalar_probes(self, data):
        rng_seed = data.draw(st.integers(min_value=0, max_value=2**31))
        rng = np.random.default_rng(rng_seed)
        rt_tasks = [
            RealTimeTask(
                name=f"rt{index}",
                wcet=int(rng.integers(1, 6)),
                period=int(rng.integers(8, 60)),
                priority=index,
            )
            for index in range(int(rng.integers(0, 5)))
        ]
        assigner = CorePeriodAssigner(RtaContext(2), rt_tasks)
        fixed = [
            (int(rng.integers(1, 6)), int(rng.integers(20, 200)))
            for _ in range(int(rng.integers(0, 3)))
        ]
        wcet = int(rng.integers(1, 8))
        limit = int(rng.integers(wcet, 300))
        varying_wcet = int(rng.integers(1, 6))
        candidates = rng.integers(5, 300, size=int(rng.integers(1, 9)))
        batch = assigner.feasible_batch(
            wcet, limit, fixed, varying_wcet, candidates
        )
        for candidate, verdict in zip(candidates, batch):
            scalar = assigner.response_time(
                wcet, limit, fixed + [(varying_wcet, int(candidate))]
            )
            assert verdict == (scalar is not None)

    @given(schedulable_partitions())
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_forced_batched_hydra_search_equals_scalar(self, generated):
        if generated is None:
            return
        from repro.baselines.hydra import Hydra

        taskset, allocation = generated
        platform = Platform(num_cores=2)
        scalar_design = Hydra(platform).design(
            taskset,
            allocation.mapping,
            rta_context=RtaContext(2, warm_start=False),
        )
        original = Hydra.PERIOD_BATCH_MIN_RANGE
        try:
            Hydra.PERIOD_BATCH_MIN_RANGE = 1  # force the batched levels
            batched_design = Hydra(platform).design(
                taskset,
                allocation.mapping,
                rta_context=RtaContext(2, warm_start=True),
            )
        finally:
            Hydra.PERIOD_BATCH_MIN_RANGE = original
        assert (
            batched_design.security_periods()
            == scalar_design.security_periods()
        )
        assert batched_design.schedulable == scalar_design.schedulable


# ---------------------------------------------------------------------------
# Full column pipeline vs per-spec and frozen reference
# ---------------------------------------------------------------------------


class TestColumnPipeline:
    @pytest.fixture(scope="class")
    def config(self):
        return ExperimentConfig(
            num_cores=2,
            tasksets_per_group=2,
            utilization_groups=((0.05, 0.2), (0.45, 0.6), (0.75, 0.9)),
            seed=90125,
            schemes=("HYDRA-C", "HYDRA"),
        )

    def test_column_equals_per_spec_and_frozen_reference(self, config):
        service = BatchDesignService(
            config.num_cores, scheme_names=config.schemes
        )
        specs = build_specs(config)
        column = service.evaluate_specs(specs)
        per_spec = [service.evaluate_spec(spec) for spec in specs]
        frozen = [
            reference_evaluate_one(
                config.num_cores,
                spec.group_index,
                spec.normalized_range,
                spec.seed,
                scheme_names=config.schemes,
            )
            for spec in specs
        ]
        assert column == per_spec == frozen

    def test_single_spec_degenerate_column(self, config):
        service = BatchDesignService(
            config.num_cores, scheme_names=config.schemes
        )
        spec = build_specs(config)[0]
        assert service.evaluate_specs([spec]) == [service.evaluate_spec(spec)]

    def test_column_stats_are_populated(self, config):
        service = BatchDesignService(
            config.num_cores, scheme_names=config.schemes
        )
        sink = {}
        service.evaluate_specs(build_specs(config), stats_sink=sink)
        assert sink["exact_solves"] > 0
        assert sink["seeded_solves"] > 0
        screen_activity = (
            sink["column_ll_accepts"]
            + sink["column_bini_accepts"]
            + sink["column_undecided"]
        )
        assert screen_activity > 0


# ---------------------------------------------------------------------------
# Persistent-pool determinism and crash recovery
# ---------------------------------------------------------------------------


def _double(value):
    return value * 2


def _crash_once(payload):
    flag_path, value = payload
    if os.path.exists(flag_path):
        os.remove(flag_path)
        os._exit(17)
    return value * 2


class TestPersistentPoolExecution:
    @pytest.fixture(scope="class")
    def config_kwargs(self):
        return dict(
            num_cores=2,
            tasksets_per_group=2,
            utilization_groups=((0.05, 0.2), (0.45, 0.6)),
            seed=4242,
            schemes=("HYDRA-C", "HYDRA"),
        )

    def test_n_jobs_and_chunk_size_invariance_through_reused_pool(
        self, config_kwargs
    ):
        serial = SweepOrchestrator(
            ExperimentConfig(**config_kwargs, n_jobs=1, chunk_size=3)
        ).run()
        with PersistentPool(2) as pool:
            parallel_a = SweepOrchestrator(
                ExperimentConfig(**config_kwargs, n_jobs=2, chunk_size=2),
                pool=pool,
            ).run()
            parallel_b = SweepOrchestrator(
                ExperimentConfig(**config_kwargs, n_jobs=2, chunk_size=4),
                pool=pool,
            ).run()
            assert pool.active  # both runs shared one live pool
        assert serial.evaluations == parallel_a.evaluations
        assert serial.evaluations == parallel_b.evaluations

    def test_resume_through_reused_pool(self, config_kwargs, tmp_path):
        checkpoint = tmp_path / "resume.jsonl"
        config = ExperimentConfig(
            **config_kwargs,
            n_jobs=2,
            chunk_size=1,
            checkpoint_path=str(checkpoint),
        )
        full = SweepOrchestrator(
            ExperimentConfig(**config_kwargs, n_jobs=1)
        ).run()

        class StopAfterTwo(Exception):
            pass

        chunks_done = []

        def progress(update):
            chunks_done.append(update)
            if len(chunks_done) == 2:
                raise StopAfterTwo

        with PersistentPool(2) as pool:
            with pytest.raises(StopAfterTwo):
                SweepOrchestrator(config, progress=progress, pool=pool).run()
            resumed = SweepOrchestrator(config, pool=pool).run()
        assert resumed.evaluations == full.evaluations

    def test_worker_crash_rebuilds_pool_and_retries(self, tmp_path):
        flag = tmp_path / "crash-once"
        flag.write_text("arm")
        with PersistentPool(2) as pool:
            results = pool.map_chunk(
                _crash_once, [(str(flag), value) for value in range(4)]
            )
            assert results == [0, 2, 4, 6]
            assert pool.rebuilds == 1
            # pool remains usable after the rebuild
            assert pool.map_chunk(_double, [5]) == [10]

    def test_deterministic_crash_eventually_propagates(self, tmp_path):
        flag = tmp_path / "crash-always"

        def rearm_and_run():
            flag.write_text("arm")

        with PersistentPool(1, max_rebuilds=0) as pool:
            flag.write_text("arm")
            with pytest.raises(Exception):
                pool.map_chunk(_crash_once, [(str(flag), 1)])
        assert pool.closed

    def test_slice_evenly_preserves_order_and_balance(self):
        items = list(range(10))
        slices = slice_evenly(items, 4)
        assert [len(chunk) for chunk in slices] == [3, 3, 2, 2]
        assert [item for chunk in slices for item in chunk] == items
        assert slice_evenly([], 3) == []
        assert slice_evenly([1], 5) == [[1]]
