"""Kernel-selection plumbing, fallback behaviour and structural dedup.

Three concerns live here:

* the ``kernel=`` knob -- one validator (`normalise_kernel`) behind
  :class:`~repro.rta.RtaContext`, :class:`~repro.batch.service.BatchDesignService`,
  :class:`~repro.experiments.config.ExperimentConfig` and the CLI
  ``--kernel`` flag; unknown names fail with one line, an unavailable
  compiled backend warns **once per process** and falls back;
* forced fallback -- with the backend import-blocked (or disabled via
  ``REPRO_DISABLE_COMPILED``) the compiled tier must produce byte-equal
  results through the pure-python kernels;
* :class:`~repro.rta.dedup.StructuralCache` -- the MISS sentinel (cached
  ``None`` verdicts are valid), the wholesale clear at ``max_entries``
  and the cross-task-set verdict replay it enables.
"""

from __future__ import annotations

import builtins
import sys
import warnings

import pytest

from repro.core.analysis import CarryInStrategy, SecurityTaskState
from repro.errors import ConfigurationError
from repro.model import RealTimeTask
from repro.rta import (
    RtaContext,
    StructuralCache,
    kernel_status,
    normalise_kernel,
    security_response_time,
)
from repro.rta import compiled as compiled_pkg
from repro.rta.dedup import MISS


@pytest.fixture
def clean_kernel_state(monkeypatch):
    """Isolate the module-level load/warn state and restore it afterwards."""
    monkeypatch.delenv("REPRO_DISABLE_COMPILED", raising=False)
    compiled_pkg._reset_for_tests()
    yield monkeypatch
    compiled_pkg._reset_for_tests()


# ---------------------------------------------------------------------------
# The kernel= knob
# ---------------------------------------------------------------------------


class TestKernelKnob:
    def test_unknown_kernel_is_one_line_configuration_error(self):
        with pytest.raises(ConfigurationError) as excinfo:
            normalise_kernel("jit")
        message = str(excinfo.value)
        assert "\n" not in message
        assert "jit" in message and "python" in message

    def test_context_validates_kernel(self):
        with pytest.raises(ConfigurationError):
            RtaContext(2, kernel="bogus")

    def test_service_validates_kernel(self):
        from repro.batch.service import BatchDesignService

        with pytest.raises(ConfigurationError):
            BatchDesignService(2, kernel="bogus")

    def test_experiment_config_validates_kernel(self):
        from repro.experiments.config import ExperimentConfig

        with pytest.raises(ConfigurationError):
            ExperimentConfig(kernel="bogus")

    def test_python_tier_never_loads_backend(self, clean_kernel_state):
        context = RtaContext(2, kernel="python")
        assert context.compiled_kernel is None
        assert compiled_pkg._LOAD_TRIED is False

    def test_kernel_status_reports_both_tiers(self):
        status = kernel_status()
        assert status["python"]["available"] is True
        assert set(status) == {"python", "compiled"}
        assert isinstance(status["compiled"]["available"], bool)

    def test_kernels_cli_lists_backends(self, capsys):
        from repro.cli import main

        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        assert "python" in out and "compiled" in out


# ---------------------------------------------------------------------------
# Fallback behaviour
# ---------------------------------------------------------------------------


def _fallback_workload(kernel_mode: str):
    """A small Eq. 6-8 scenario evaluated under *kernel_mode*."""
    rt_by_core = {
        0: [RealTimeTask(name="rt0", wcet=2, period=10)],
        1: [RealTimeTask(name="rt1", wcet=3, period=14)],
    }
    states = [
        SecurityTaskState(name="hp0", wcet=2, period=50, response_time=9)
    ]
    return security_response_time(
        security_wcet=4,
        limit=300,
        rt_tasks_by_core=rt_by_core,
        higher_security=states,
        num_cores=2,
        strategy=CarryInStrategy.EXACT,
        rta_context=RtaContext(2, kernel=kernel_mode),
    )


class TestFallback:
    def test_disabled_backend_warns_once_not_per_context(
        self, clean_kernel_state
    ):
        clean_kernel_state.setenv("REPRO_DISABLE_COMPILED", "1")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            contexts = [RtaContext(2, kernel="compiled") for _ in range(5)]
        assert all(c.compiled_kernel is None for c in contexts)
        fallback = [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]
        assert len(fallback) == 1
        assert "REPRO_DISABLE_COMPILED" in str(fallback[0].message)

    def test_auto_falls_back_silently(self, clean_kernel_state):
        clean_kernel_state.setenv("REPRO_DISABLE_COMPILED", "1")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            context = RtaContext(2, kernel="auto")
        assert context.compiled_kernel is None
        assert not [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]

    def test_import_blocked_backend_falls_back(self, clean_kernel_state):
        """Simulate a machine without cffi: import blocked, results equal."""
        real_import = builtins.__import__

        def blocking_import(name, *args, **kwargs):
            if name == "cffi" or name.startswith("cffi."):
                raise ImportError("cffi blocked for the forced-fallback test")
            return real_import(name, *args, **kwargs)

        clean_kernel_state.delitem(sys.modules, "cffi", raising=False)
        clean_kernel_state.setattr(builtins, "__import__", blocking_import)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            context = RtaContext(2, kernel="compiled")
        assert context.compiled_kernel is None
        assert "ImportError" in (compiled_pkg._LOAD_ERROR or "")

    def test_forced_fallback_results_equal_python(self, clean_kernel_state):
        python_result = _fallback_workload("python")
        clean_kernel_state.setenv("REPRO_DISABLE_COMPILED", "1")
        compiled_pkg._reset_for_tests()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            fallback_result = _fallback_workload("compiled")
        assert fallback_result == python_result


# ---------------------------------------------------------------------------
# Compiled tier (exercised only where the backend builds)
# ---------------------------------------------------------------------------

requires_compiled = pytest.mark.skipif(
    not compiled_pkg.kernel_available(),
    reason="compiled kernel backend unavailable on this machine",
)


class TestCompiledTier:
    @requires_compiled
    def test_compiled_solves_are_counted(self):
        context = RtaContext(2, kernel="compiled")
        result = _fallback_workload("python")
        compiled_result = security_response_time(
            security_wcet=4,
            limit=300,
            rt_tasks_by_core={
                0: [RealTimeTask(name="rt0", wcet=2, period=10)],
                1: [RealTimeTask(name="rt1", wcet=3, period=14)],
            },
            higher_security=[
                SecurityTaskState(
                    name="hp0", wcet=2, period=50, response_time=9
                )
            ],
            num_cores=2,
            strategy=CarryInStrategy.EXACT,
            rta_context=context,
        )
        assert compiled_result == result
        assert context.stats.compiled_solves > 0

    @requires_compiled
    def test_summary_line_mentions_compiled_and_dedup(self):
        context = RtaContext(2, kernel="compiled")
        line = context.stats.summary_line()
        assert "compiled solves" in line
        assert "dedup" in line


# ---------------------------------------------------------------------------
# Structural dedup
# ---------------------------------------------------------------------------


class TestStructuralCache:
    def test_miss_sentinel_distinguishes_cached_none(self):
        cache = StructuralCache()
        assert cache.verdict("k") is MISS
        cache.store_verdict("k", None)
        assert cache.verdict("k") is None
        assert cache.verdict("other") is MISS

    def test_max_entries_clears_wholesale(self):
        cache = StructuralCache(max_entries=2)
        cache.store_verdict("a", 1)
        cache.store_verdict("b", 2)
        assert len(cache) == 2
        cache.store_verdict("c", 3)
        assert cache.verdict("a") is MISS
        assert cache.verdict("c") == 3

    def test_max_entries_validated(self):
        with pytest.raises(ValueError):
            StructuralCache(max_entries=0)

    def test_verdict_replay_across_contexts(self):
        """Structurally equal task sets replay each other's verdicts."""
        shared = StructuralCache()
        rt_by_core = {0: [RealTimeTask(name="a", wcet=2, period=10)]}
        # Same (wcet, period) layout, different names: same structural key.
        renamed = {0: [RealTimeTask(name="b", wcet=2, period=10)]}
        first = RtaContext(2, structural_cache=shared)
        second = RtaContext(2, structural_cache=shared)
        kwargs = dict(
            security_wcet=3,
            limit=200,
            higher_security=[],
            num_cores=2,
            strategy=CarryInStrategy.EXACT,
        )
        result_a = security_response_time(
            rt_tasks_by_core=rt_by_core, rta_context=first, **kwargs
        )
        result_b = security_response_time(
            rt_tasks_by_core=renamed, rta_context=second, **kwargs
        )
        assert result_a == result_b
        assert second.stats.dedup_verdict_hits >= 1

    def test_selector_dedup_layers_fire_and_results_equal(self):
        """The within-task-set dedup layers (carry-in certification, probe
        pinning, Line-8 refresh reuse) actually trigger on a small sweep
        slice and leave results byte-equal to the ``dedup=False`` profile.
        """
        from repro.batch.orchestrator import build_specs
        from repro.batch.service import BatchDesignService
        from repro.experiments.config import ExperimentConfig

        config = ExperimentConfig(
            num_cores=2,
            tasksets_per_group=1,
            seed=5061,
            schemes=("HYDRA-C",),
        )
        specs = build_specs(config)[:6]
        dedup = BatchDesignService(
            2, scheme_names=("HYDRA-C",), dedup=True
        )
        plain = BatchDesignService(
            2, scheme_names=("HYDRA-C",), dedup=False
        )
        sink: dict = {}
        assert dedup.evaluate_specs(
            specs, stats_sink=sink
        ) == plain.evaluate_specs(specs)
        assert sink["dedup_certified_sets"] > 0
        assert sink["dedup_pinned_solves"] > 0
        assert sink["dedup_refresh_reuses"] > 0
        plain_sink: dict = {}
        plain.evaluate_specs(specs, stats_sink=plain_sink)
        for counter in (
            "dedup_certified_sets",
            "dedup_pinned_sets",
            "dedup_pinned_solves",
            "dedup_refresh_reuses",
            "dedup_verdict_hits",
        ):
            assert plain_sink.get(counter, 0) == 0, counter

    def test_dedup_disabled_without_warm_start(self):
        assert RtaContext(2, warm_start=False).structural_cache is None
        assert RtaContext(2, warm_start=True).structural_cache is not None
        assert (
            RtaContext(2, warm_start=False, dedup=True).structural_cache
            is not None
        )
        assert (
            RtaContext(2, warm_start=True, dedup=False).structural_cache
            is None
        )
