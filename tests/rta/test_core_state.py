"""Unit tests for the kernel's incremental per-core state."""

import pytest

from repro.rta import RtaContext, TaskView
from repro.schedulability.uniprocessor import (
    UniprocessorTask,
    uniprocessor_response_time,
)


def view(name, wcet, period, deadline=None, key=None):
    return TaskView(
        name=name,
        wcet=wcet,
        period=period,
        deadline=deadline if deadline is not None else period,
        key=key if key is not None else (period, name),
    )


class TestTaskView:
    def test_rejects_non_positive_parameters(self):
        with pytest.raises(ValueError):
            view("a", 0, 10)
        with pytest.raises(ValueError):
            view("a", 1, 0)
        with pytest.raises(ValueError):
            view("a", 1, 10, deadline=0)

    def test_utilization(self):
        assert view("a", 2, 8).utilization == 0.25


class TestAdmission:
    def test_empty_core_admits_anything_schedulable(self):
        state = RtaContext(2).core_state()
        admission = state.admit(view("a", 3, 10), need_response=True)
        assert admission.admitted
        assert admission.response == 3

    def test_rejects_task_missing_its_deadline(self):
        context = RtaContext(2, quick_accept=False)
        state = context.core_state()
        state = state.admit(view("hog", 6, 10)).state
        admission = state.admit(view("late", 5, 10, key=(11, "late")))
        assert not admission.admitted
        assert admission.state is None

    def test_mid_insertion_rechecks_lower_priority_tasks(self):
        """A higher-priority insertion that breaks an existing task is
        rejected even though the newcomer itself is schedulable."""
        context = RtaContext(2, quick_accept=False)
        state = context.core_state()
        # 'lo' fits alone: R = 6 <= 10.
        state = state.admit(view("lo", 6, 10)).state
        # 'hi' (inserted above) fits by itself but pushes 'lo' to 6+5 > 10.
        admission = state.admit(view("hi", 5, 9, key=(9, "hi")))
        assert not admission.admitted

    def test_prefix_tasks_keep_cached_responses(self):
        context = RtaContext(2, quick_accept=False)
        state = context.core_state()
        state = state.admit(view("hi", 2, 8), need_response=True).state
        state = state.admit(view("lo", 3, 20), need_response=True).state
        assert state.response_time("hi") == 2
        assert state.response_time("lo") == 5

    def test_lazy_response_matches_frozen_solver(self):
        context = RtaContext(2)
        state = context.core_state()
        tasks = [view("a", 2, 9), view("b", 3, 15), view("c", 1, 40)]
        for v in tasks:
            state = state.admit(v).state
        frozen = [UniprocessorTask(v.name, v.wcet, v.period) for v in tasks]
        for position, v in enumerate(tasks):
            expected = uniprocessor_response_time(
                v.wcet, frozen[:position], limit=v.period
            )
            assert state.response_time(v.name) == expected

    def test_response_time_unknown_name_raises(self):
        state = RtaContext(2).core_state()
        with pytest.raises(KeyError):
            state.response_time("ghost")

    def test_probe_response_matches_frozen_solver(self):
        context = RtaContext(2)
        state = context.core_state(
            [view("rt0", 2, 10), view("rt1", 4, 30, key=(30, "rt1"))]
        )
        frozen = [
            UniprocessorTask("rt0", 2, 10),
            UniprocessorTask("rt1", 4, 30),
        ]
        probe = view("sec", 5, 200, key=(10**6, "sec"))
        assert state.probe_response(probe, 200) == uniprocessor_response_time(
            5, frozen, limit=200
        )
        # Second probe against the same state reuses the demand memo and
        # still matches.
        probe2 = view("sec2", 7, 500, key=(10**6 + 1, "sec2"))
        assert state.probe_response(probe2, 500) == uniprocessor_response_time(
            7, frozen, limit=500
        )

    def test_utilization_accumulates_in_insertion_order(self):
        context = RtaContext(2)
        state = context.core_state()
        values = [(3, 10), (7, 23), (1, 40)]
        total = 0.0
        for index, (wcet, period) in enumerate(values):
            v = view(f"t{index}", wcet, period, key=(index, f"t{index}"))
            state = state.admit(v).state
            total += wcet / period
        assert state.utilization == total


class TestContextStats:
    def test_exact_solves_are_counted(self):
        context = RtaContext(2, quick_accept=False)
        state = context.core_state()
        state.admit(view("a", 3, 10), need_response=True)
        assert context.stats.exact_solves == 1
        assert context.stats.quick_accepts == 0

    def test_ll_quick_accept_skips_the_exact_fixed_point(self):
        context = RtaContext(2)
        state = context.core_state()
        # Two tasks at 10% utilization each: far below the LL bound, RM
        # order, implicit deadlines -> the whole-core shortcut fires.
        state = state.admit(view("a", 1, 10)).state
        state.admit(view("b", 2, 20))
        assert context.stats.ll_accepts >= 1
        assert context.stats.exact_solves == 0
