"""The accept-only admission shortcuts can never flip an admission outcome.

The kernel's Liu & Layland and Bini-bound shortcuts skip the exact Eq. 1
fixed point when they already prove schedulability.  Both are *sufficient*
tests, so the only way they could change behaviour is by accepting a task
the exact analysis rejects -- these suites pin that they never do, by
running the same admission streams with the shortcuts enabled and
disabled, and against the frozen reference analysis.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch.reference import reference_partition_rt_tasks
from repro.errors import AllocationError
from repro.generation.taskset_generator import (
    TasksetGenerationConfig,
    TasksetGenerator,
)
from repro.model import Platform
from repro.partitioning.heuristics import FitStrategy, partition_rt_tasks
from repro.rta import RtaContext, TaskView
from repro.schedulability.uniprocessor import (
    UniprocessorTask,
    core_is_schedulable,
    liu_layland_bound,
    response_time_upper_bound,
)


@st.composite
def task_views(draw, index):
    period = draw(st.integers(min_value=2, max_value=60))
    wcet = draw(st.integers(min_value=1, max_value=period))
    implicit = draw(st.booleans())
    deadline = (
        period if implicit else draw(st.integers(min_value=wcet, max_value=period))
    )
    return TaskView(
        name=f"t{index}",
        wcet=wcet,
        period=period,
        deadline=deadline,
        key=(period, f"t{index}"),
    )


@st.composite
def admission_streams(draw):
    count = draw(st.integers(min_value=1, max_value=8))
    views = [draw(task_views(index)) for index in range(count)]
    # Priority order = RM by (period, name); zero-slack and overloaded
    # streams arise naturally from wcet == period draws.
    return sorted(views, key=lambda v: v.key)


def run_stream(views, quick_accept):
    """Admit *views* in order; return per-step verdicts and the context."""
    context = RtaContext(2, quick_accept=quick_accept)
    state = context.core_state()
    verdicts = []
    for v in views:
        admission = state.admit(v)
        verdicts.append(admission.admitted)
        if admission.admitted:
            state = admission.state
        else:
            break
    return verdicts, context


class TestShortcutsNeverFlipAdmission:
    @given(admission_streams())
    @settings(max_examples=200, deadline=None)
    def test_quick_accept_on_equals_off(self, views):
        with_shortcuts, _ = run_stream(views, quick_accept=True)
        without, _ = run_stream(views, quick_accept=False)
        assert with_shortcuts == without

    @given(admission_streams())
    @settings(max_examples=200, deadline=None)
    def test_quick_accept_equals_frozen_full_analysis(self, views):
        verdicts, _ = run_stream(views, quick_accept=True)
        frozen = [
            UniprocessorTask(v.name, v.wcet, v.period, v.deadline) for v in views
        ]
        # Every verdict in the stream (all-admitted prefixes plus the first
        # rejection, where the loop stops) must match the frozen whole-core
        # analysis of the same prefix.
        for step, verdict in enumerate(verdicts):
            assert verdict == core_is_schedulable(frozen[: step + 1]), (views, step)

    def test_shortcuts_fire_on_real_workloads(self):
        """The shortcuts are not dead code: a representative Table-3 stream
        takes both the LL and the bound fast path at least once."""
        generator = TasksetGenerator(
            TasksetGenerationConfig(num_cores=2), seed=99
        )
        context = RtaContext(2)
        platform = Platform.dual_core()
        fired_sets = 0
        for normalized in (0.2, 0.35, 0.5, 0.65):
            taskset = generator.generate_normalized(normalized)
            try:
                partition_rt_tasks(taskset, platform, rta_context=context)
            except AllocationError:
                continue
            fired_sets += 1
        assert fired_sets > 0
        assert context.stats.ll_accepts > 0
        assert context.stats.quick_accepts > 0


class TestBoundSoundness:
    """The wired-in bounds themselves stay sound oracles."""

    @given(admission_streams())
    @settings(max_examples=150, deadline=None)
    def test_exact_response_never_exceeds_bini_bound(self, views):
        context = RtaContext(2, quick_accept=False)
        state = context.core_state()
        for v in views:
            prefix = [
                UniprocessorTask(p.name, p.wcet, p.period, p.deadline)
                for p in state.tasks
            ]
            bound = response_time_upper_bound(v.wcet, prefix)
            admission = state.admit(v, need_response=True)
            if bound is not None and admission.admitted:
                assert admission.response <= bound
            if not admission.admitted:
                break
            state = admission.state

    @given(st.integers(min_value=1, max_value=50))
    @settings(max_examples=50, deadline=None)
    def test_ll_bound_is_decreasing_toward_ln2(self, n):
        assert 0.6931 < liu_layland_bound(n) <= 1.0
        if n > 1:
            assert liu_layland_bound(n) < liu_layland_bound(n - 1)


class TestPartitioningDecisionsUnchanged:
    """Kernel partitioning (shortcuts on) = frozen full-re-analysis packing."""

    @pytest.mark.parametrize("seed", [7, 21, 1303])
    def test_best_fit_partitions_match_the_frozen_reference(self, seed):
        generator = TasksetGenerator(
            TasksetGenerationConfig(num_cores=2), seed=seed
        )
        platform = Platform.dual_core()
        rng = np.random.default_rng(seed)
        compared = 0
        for _ in range(12):
            taskset = generator.generate_normalized(float(rng.uniform(0.1, 0.9)))
            try:
                frozen = reference_partition_rt_tasks(taskset, platform)
            except AllocationError:
                with pytest.raises(AllocationError):
                    partition_rt_tasks(taskset, platform)
                continue
            kernel = partition_rt_tasks(taskset, platform)
            assert kernel.mapping == frozen.mapping
            compared += 1
        assert compared > 0

    @pytest.mark.parametrize(
        "strategy", [FitStrategy.FIRST_FIT, FitStrategy.BEST_FIT, FitStrategy.WORST_FIT]
    )
    def test_strategies_agree_with_and_without_shortcuts(self, strategy):
        generator = TasksetGenerator(
            TasksetGenerationConfig(num_cores=4), seed=55
        )
        platform = Platform.quad_core()
        for normalized in (0.25, 0.5, 0.75):
            taskset = generator.generate_normalized(normalized)
            outcomes = []
            for quick in (True, False):
                try:
                    allocation = partition_rt_tasks(
                        taskset,
                        platform,
                        strategy=strategy,
                        rta_context=RtaContext(platform, quick_accept=quick),
                    )
                    outcomes.append(allocation.mapping)
                except AllocationError:
                    outcomes.append(None)
            assert outcomes[0] == outcomes[1]
