"""The accept-only admission shortcuts can never flip an admission outcome.

The kernel's Liu & Layland and Bini-bound shortcuts skip the exact Eq. 1
fixed point when they already prove schedulability.  Both are *sufficient*
tests, so the only way they could change behaviour is by accepting a task
the exact analysis rejects -- these suites pin that they never do, by
running the same admission streams with the shortcuts enabled and
disabled, and against the frozen reference analysis.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch.reference import reference_partition_rt_tasks
from repro.errors import AllocationError
from repro.generation.taskset_generator import (
    TasksetGenerationConfig,
    TasksetGenerator,
)
from repro.model import Platform, RealTimeTask, SecurityTask, TaskSet
from repro.model.tasks import ResourceClaim
from repro.partitioning.heuristics import FitStrategy, partition_rt_tasks
from repro.platform import PlatformModel
from repro.rta import RtaContext, TaskView
from repro.rta.vectorized import partition_column
from repro.rover.case_study import rover_taskset
from repro.schedulability.uniprocessor import (
    UniprocessorTask,
    core_is_schedulable,
    liu_layland_bound,
    response_time_upper_bound,
)


@st.composite
def task_views(draw, index):
    period = draw(st.integers(min_value=2, max_value=60))
    wcet = draw(st.integers(min_value=1, max_value=period))
    implicit = draw(st.booleans())
    deadline = (
        period if implicit else draw(st.integers(min_value=wcet, max_value=period))
    )
    return TaskView(
        name=f"t{index}",
        wcet=wcet,
        period=period,
        deadline=deadline,
        key=(period, f"t{index}"),
    )


@st.composite
def admission_streams(draw):
    count = draw(st.integers(min_value=1, max_value=8))
    views = [draw(task_views(index)) for index in range(count)]
    # Priority order = RM by (period, name); zero-slack and overloaded
    # streams arise naturally from wcet == period draws.
    return sorted(views, key=lambda v: v.key)


def run_stream(views, quick_accept):
    """Admit *views* in order; return per-step verdicts and the context."""
    context = RtaContext(2, quick_accept=quick_accept)
    state = context.core_state()
    verdicts = []
    for v in views:
        admission = state.admit(v)
        verdicts.append(admission.admitted)
        if admission.admitted:
            state = admission.state
        else:
            break
    return verdicts, context


class TestShortcutsNeverFlipAdmission:
    @given(admission_streams())
    @settings(max_examples=200, deadline=None)
    def test_quick_accept_on_equals_off(self, views):
        with_shortcuts, _ = run_stream(views, quick_accept=True)
        without, _ = run_stream(views, quick_accept=False)
        assert with_shortcuts == without

    @given(admission_streams())
    @settings(max_examples=200, deadline=None)
    def test_quick_accept_equals_frozen_full_analysis(self, views):
        verdicts, _ = run_stream(views, quick_accept=True)
        frozen = [
            UniprocessorTask(v.name, v.wcet, v.period, v.deadline) for v in views
        ]
        # Every verdict in the stream (all-admitted prefixes plus the first
        # rejection, where the loop stops) must match the frozen whole-core
        # analysis of the same prefix.
        for step, verdict in enumerate(verdicts):
            assert verdict == core_is_schedulable(frozen[: step + 1]), (views, step)

    def test_shortcuts_fire_on_real_workloads(self):
        """The shortcuts are not dead code: a representative Table-3 stream
        takes both the LL and the bound fast path at least once."""
        generator = TasksetGenerator(
            TasksetGenerationConfig(num_cores=2), seed=99
        )
        context = RtaContext(2)
        platform = Platform.dual_core()
        fired_sets = 0
        for normalized in (0.2, 0.35, 0.5, 0.65):
            taskset = generator.generate_normalized(normalized)
            try:
                partition_rt_tasks(taskset, platform, rta_context=context)
            except AllocationError:
                continue
            fired_sets += 1
        assert fired_sets > 0
        assert context.stats.ll_accepts > 0
        assert context.stats.quick_accepts > 0


def run_stream_with_blocking(views, quick_accept, blocking):
    """Like :func:`run_stream` with per-task blocking terms installed."""
    context = RtaContext(2, quick_accept=quick_accept)
    context._blocking = dict(blocking)
    state = context.core_state()
    verdicts = []
    for v in views:
        admission = state.admit(v)
        verdicts.append(admission.admitted)
        if admission.admitted:
            state = admission.state
        else:
            break
    return verdicts, context


class TestBlockingAwareShortcuts:
    """The shortcut disable keys on the blocking terms actually in play.

    A lock-using protocol over a claim-annotated task set used to disable
    the LL/Bini quick-accepts and the vectorized screen wholesale.  The
    disable now keys on each task's *own* term being non-zero (plus, for
    the whole-core LL accept, any term on the core), so the common cases
    -- protocol ``none`` with claims, ``pip``/``pcp`` with claim-free task
    sets, and claims confined to security tasks -- keep the full fast
    path, while verdicts stay flip-free whenever terms really are in play.
    """

    @given(
        admission_streams(),
        st.dictionaries(
            st.integers(min_value=0, max_value=7).map(lambda i: f"t{i}"),
            st.integers(min_value=1, max_value=30),
            max_size=4,
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_no_flip_with_blocking_terms_in_play(self, views, blocking):
        """Per-task keying can never flip an admission stream's verdicts."""
        with_shortcuts, _ = run_stream_with_blocking(
            views, quick_accept=True, blocking=blocking
        )
        without, _ = run_stream_with_blocking(
            views, quick_accept=False, blocking=blocking
        )
        assert with_shortcuts == without

    def test_zero_term_candidates_keep_the_shortcuts(self):
        """Terms on *other* cores' tasks must not starve the fast path: a
        stream whose entries all have zero terms quick-accepts exactly as
        if no blocking existed (the installed terms name absent tasks)."""
        views = [
            TaskView(name=f"t{i}", wcet=1, period=10 + i, deadline=10 + i,
                     key=(10 + i, f"t{i}"))
            for i in range(3)
        ]
        clean, clean_context = run_stream_with_blocking(
            views, quick_accept=True, blocking={}
        )
        keyed, keyed_context = run_stream_with_blocking(
            views, quick_accept=True, blocking={"someone-else": 25}
        )
        assert clean == keyed == [True, True, True]
        assert keyed_context.stats.ll_accepts == clean_context.stats.ll_accepts
        assert keyed_context.stats.ll_accepts > 0

    def test_candidate_own_term_disables_its_bound_accept(self):
        """A candidate carrying a term takes the exact fixed point (its
        blocking-blind bound is unsound for it), yet the verdict matches
        the shortcut-free run."""
        views = [
            TaskView(name=f"t{i}", wcet=2, period=20 + i, deadline=20 + i,
                     key=(20 + i, f"t{i}"))
            for i in range(3)
        ]
        blocking = {"t1": 5}
        keyed, keyed_context = run_stream_with_blocking(
            views, quick_accept=True, blocking=blocking
        )
        exact, _ = run_stream_with_blocking(
            views, quick_accept=False, blocking=blocking
        )
        assert keyed == exact
        clean, clean_context = run_stream_with_blocking(
            views, quick_accept=True, blocking={}
        )
        assert keyed_context.stats.ll_accepts < clean_context.stats.ll_accepts

    def test_rover_under_pip_keeps_rt_partitioning_shortcuts(self):
        """The PR 8 regression case: the rover's claims sit on its security
        tasks only, so under ``pip`` the RT partitioning must still take
        the quick-accepts (RT terms are provably zero)."""
        taskset = rover_taskset()
        platform = Platform.dual_core()
        context = RtaContext(
            platform, platform_model=PlatformModel.parse("rm", "pip", "zero")
        )
        context.prime_blocking(taskset)
        assert context.has_blocking  # pip really is in play...
        allocation = partition_rt_tasks(taskset, platform, rta_context=context)
        # ...yet the zero-term RT tasks keep the fast path.
        assert context.stats.quick_accepts + context.stats.ll_accepts > 0
        baseline = partition_rt_tasks(
            taskset, platform, rta_context=RtaContext(platform)
        )
        assert allocation.mapping == baseline.mapping

    def test_protocol_none_with_claims_has_no_terms_at_all(self):
        """Claims under the default protocol never reach the context."""
        context = RtaContext(
            2, platform_model=PlatformModel.parse("rm", "none", "zero")
        )
        context.prime_blocking(rover_taskset())
        assert not context.has_blocking

    def test_partition_column_splits_mixed_blocking_columns(self):
        """A column mixing term-carrying and term-free task sets routes
        each set to the right path and reproduces the scalar packing."""
        claimed = TaskSet.create(
            [
                RealTimeTask(
                    name="rt-a", wcet=40, period=200,
                    claims=(ResourceClaim("bus", start=0, duration=10),),
                ),
                RealTimeTask(
                    name="rt-b", wcet=60, period=400,
                    claims=(ResourceClaim("bus", start=5, duration=20),),
                ),
            ],
            [],
        )
        clean = TaskSet.create(
            [
                RealTimeTask(name="rt-c", wcet=30, period=150),
                RealTimeTask(name="rt-d", wcet=50, period=300),
            ],
            [],
        )
        platform = Platform.dual_core()
        pip = PlatformModel.parse("rm", "pip", "zero")
        tasksets = [claimed, clean, claimed]
        contexts = [RtaContext(platform, platform_model=pip) for _ in tasksets]
        lockstep = partition_column(tasksets, platform, contexts)
        for taskset, result in zip(tasksets, lockstep):
            scalar_context = RtaContext(platform, platform_model=pip)
            scalar_context.prime_blocking(taskset)
            try:
                scalar = partition_rt_tasks(
                    taskset, platform, rta_context=scalar_context
                )
            except AllocationError:
                scalar = None
            if scalar is None:
                assert result is None
            else:
                assert result is not None
                assert result.mapping == scalar.mapping


class TestBoundSoundness:
    """The wired-in bounds themselves stay sound oracles."""

    @given(admission_streams())
    @settings(max_examples=150, deadline=None)
    def test_exact_response_never_exceeds_bini_bound(self, views):
        context = RtaContext(2, quick_accept=False)
        state = context.core_state()
        for v in views:
            prefix = [
                UniprocessorTask(p.name, p.wcet, p.period, p.deadline)
                for p in state.tasks
            ]
            bound = response_time_upper_bound(v.wcet, prefix)
            admission = state.admit(v, need_response=True)
            if bound is not None and admission.admitted:
                assert admission.response <= bound
            if not admission.admitted:
                break
            state = admission.state

    @given(st.integers(min_value=1, max_value=50))
    @settings(max_examples=50, deadline=None)
    def test_ll_bound_is_decreasing_toward_ln2(self, n):
        assert 0.6931 < liu_layland_bound(n) <= 1.0
        if n > 1:
            assert liu_layland_bound(n) < liu_layland_bound(n - 1)


class TestPartitioningDecisionsUnchanged:
    """Kernel partitioning (shortcuts on) = frozen full-re-analysis packing."""

    @pytest.mark.parametrize("seed", [7, 21, 1303])
    def test_best_fit_partitions_match_the_frozen_reference(self, seed):
        generator = TasksetGenerator(
            TasksetGenerationConfig(num_cores=2), seed=seed
        )
        platform = Platform.dual_core()
        rng = np.random.default_rng(seed)
        compared = 0
        for _ in range(12):
            taskset = generator.generate_normalized(float(rng.uniform(0.1, 0.9)))
            try:
                frozen = reference_partition_rt_tasks(taskset, platform)
            except AllocationError:
                with pytest.raises(AllocationError):
                    partition_rt_tasks(taskset, platform)
                continue
            kernel = partition_rt_tasks(taskset, platform)
            assert kernel.mapping == frozen.mapping
            compared += 1
        assert compared > 0

    @pytest.mark.parametrize(
        "strategy", [FitStrategy.FIRST_FIT, FitStrategy.BEST_FIT, FitStrategy.WORST_FIT]
    )
    def test_strategies_agree_with_and_without_shortcuts(self, strategy):
        generator = TasksetGenerator(
            TasksetGenerationConfig(num_cores=4), seed=55
        )
        platform = Platform.quad_core()
        for normalized in (0.25, 0.5, 0.75):
            taskset = generator.generate_normalized(normalized)
            outcomes = []
            for quick in (True, False):
                try:
                    allocation = partition_rt_tasks(
                        taskset,
                        platform,
                        strategy=strategy,
                        rta_context=RtaContext(platform, quick_accept=quick),
                    )
                    outcomes.append(allocation.mapping)
                except AllocationError:
                    outcomes.append(None)
            assert outcomes[0] == outcomes[1]
