"""Differential suite: the RTA kernel equals the frozen references everywhere.

The frozen oracles are :mod:`repro.schedulability` (uniprocessor,
partitioned and global analyses -- untouched since the seed) and the
pre-kernel packing paths preserved in :mod:`repro.batch.reference`.  On
randomized task sets -- including zero-slack tasks (``wcet == deadline``)
and overloaded cores (utilization above one) -- every kernel path must
reproduce the frozen response times and schedulability verdicts exactly.

The Eq. 1 and Eq. 6-8 classes run once per kernel tier (``KERNEL_MODES``):
the pure-python reference and the optional compiled backend of
:mod:`repro.rta.compiled`.  Where the backend is unavailable (no cffi, no
compiler, or ``REPRO_DISABLE_COMPILED=1`` -- the CI forced-fallback stage)
the ``compiled`` parametrization transparently exercises the fallback
path, which must equal the frozen oracles all the same.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch.reference import (
    reference_security_response_time,
)
from repro.core.analysis import CarryInStrategy, SecurityTaskState
from repro.model import Platform, RealTimeTask, SecurityTask, TaskSet
from repro.rta import (
    RtaContext,
    TaskView,
    partitioned_rt_check,
    security_response_time,
)
from repro.schedulability.global_rta import global_taskset_schedulable
from repro.schedulability.partitioned import partitioned_rt_schedulable
from repro.schedulability.uniprocessor import (
    UniprocessorTask,
    core_is_schedulable,
    uniprocessor_response_time,
)

#: Kernel tiers every Eq. 1 / Eq. 6-8 differential runs under.  The
#: compiled tier degrades to the (once-per-process warned) python fallback
#: when the backend cannot be built, so the suite runs on any machine --
#: under ``REPRO_DISABLE_COMPILED=1`` both parametrizations exercise the
#: pure path, which is exactly what the CI forced-fallback stage pins.
KERNEL_MODES = ("python", "compiled")


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


@st.composite
def uniprocessor_cores(draw):
    """Priority-ordered cores incl. zero-slack and overloaded ones."""
    count = draw(st.integers(min_value=1, max_value=7))
    tasks = []
    for index in range(count):
        period = draw(st.integers(min_value=2, max_value=50))
        wcet = draw(st.integers(min_value=1, max_value=period))
        deadline = draw(st.integers(min_value=wcet, max_value=period))
        tasks.append(UniprocessorTask(f"t{index}", wcet, period, deadline))
    tasks.sort(key=lambda t: (t.period, t.name))
    return tasks


@st.composite
def tasksets(draw, max_cores=4):
    num_cores = draw(st.integers(min_value=1, max_value=max_cores))
    num_rt = draw(st.integers(min_value=1, max_value=8))
    num_security = draw(st.integers(min_value=0, max_value=4))
    rt_tasks = []
    for index in range(num_rt):
        period = draw(st.integers(min_value=6, max_value=80))
        wcet = draw(st.integers(min_value=1, max_value=max(1, period // 2)))
        rt_tasks.append(RealTimeTask(name=f"rt{index}", wcet=wcet, period=period))
    security_tasks = [
        SecurityTask(
            name=f"sec{index}",
            wcet=draw(st.integers(min_value=1, max_value=8)),
            max_period=draw(st.integers(min_value=60, max_value=240)),
        )
        for index in range(num_security)
    ]
    taskset = TaskSet.create(rt_tasks, security_tasks)
    allocation = {
        task.name: draw(st.integers(min_value=0, max_value=num_cores - 1))
        for task in taskset.rt_tasks
    }
    return Platform(num_cores=num_cores), taskset, allocation


# ---------------------------------------------------------------------------
# Uniprocessor (Eq. 1)
# ---------------------------------------------------------------------------


class TestUniprocessorDifferential:
    @pytest.mark.parametrize("kernel", KERNEL_MODES)
    @given(uniprocessor_cores())
    @settings(max_examples=200, deadline=None)
    def test_sequential_admission_equals_frozen_core_analysis(
        self, kernel, tasks
    ):
        context = RtaContext(2, kernel=kernel)
        state = context.core_state()
        kernel_ok = True
        for position, task in enumerate(tasks):
            admission = state.admit(
                TaskView(
                    name=task.name,
                    wcet=task.wcet,
                    period=task.period,
                    deadline=task.deadline,
                    key=(position, task.name),
                ),
                need_response=True,
            )
            if not admission.admitted:
                kernel_ok = False
                break
            # Exact per-task WCRT must equal the frozen fixed point.
            assert admission.response == uniprocessor_response_time(
                task.wcet, tasks[:position], limit=task.deadline
            )
            state = admission.state
        assert kernel_ok == core_is_schedulable(tasks)


# ---------------------------------------------------------------------------
# Partitioned (Eq. 1 per core)
# ---------------------------------------------------------------------------


class TestPartitionedDifferential:
    @pytest.mark.parametrize("kernel_mode", KERNEL_MODES)
    @given(tasksets())
    @settings(max_examples=100, deadline=None)
    def test_partitioned_check_equals_frozen(self, kernel_mode, data):
        platform, taskset, allocation = data
        frozen = partitioned_rt_schedulable(taskset, allocation, platform)
        kernel = partitioned_rt_check(
            taskset, allocation, platform, RtaContext(platform, kernel=kernel_mode)
        )
        assert kernel.schedulable == frozen.schedulable
        assert kernel.response_times == frozen.response_times
        assert kernel.unschedulable_tasks == frozen.unschedulable_tasks


# ---------------------------------------------------------------------------
# Global (GLOBAL-TMax)
# ---------------------------------------------------------------------------


class TestGlobalDifferential:
    @given(tasksets())
    @settings(max_examples=100, deadline=None)
    def test_global_engine_equals_frozen(self, data):
        platform, taskset, _allocation = data
        frozen = global_taskset_schedulable(taskset, platform)
        kernel = RtaContext(platform).global_engine().taskset_schedulable(taskset)
        assert kernel.schedulable == frozen.schedulable
        assert kernel.response_times == frozen.response_times
        assert kernel.first_failure == frozen.first_failure

    def test_vector_path_equals_frozen_on_many_tasks(self):
        """Force the NumPy branch (> 32 higher-priority tasks)."""
        rng = np.random.default_rng(5)
        rt_tasks = [
            RealTimeTask(
                name=f"rt{index:02d}",
                wcet=int(rng.integers(1, 4)),
                period=int(rng.integers(40, 200)),
            )
            for index in range(40)
        ]
        taskset = TaskSet.create(
            rt_tasks,
            [SecurityTask(name="sec0", wcet=3, max_period=4000)],
        )
        platform = Platform(num_cores=4)
        frozen = global_taskset_schedulable(taskset, platform)
        kernel = RtaContext(platform).global_engine().taskset_schedulable(taskset)
        assert kernel.response_times == frozen.response_times
        assert kernel.schedulable == frozen.schedulable


# ---------------------------------------------------------------------------
# Migrating security tasks (Eq. 6-8)
# ---------------------------------------------------------------------------


@st.composite
def migrating_scenarios(draw):
    num_cores = draw(st.integers(min_value=1, max_value=4))
    rt_by_core = {}
    for core in range(num_cores):
        count = draw(st.integers(min_value=0, max_value=4))
        rt_by_core[core] = [
            RealTimeTask(
                name=f"rt{core}_{index}",
                wcet=draw(st.integers(min_value=1, max_value=6)),
                period=draw(st.integers(min_value=8, max_value=60)),
                priority=core * 10 + index,
            )
            for index in range(count)
        ]
    states = []
    for index in range(draw(st.integers(min_value=0, max_value=4))):
        wcet = draw(st.integers(min_value=1, max_value=6))
        period = draw(st.integers(min_value=20, max_value=120))
        response = draw(st.integers(min_value=wcet, max_value=period))
        states.append(
            SecurityTaskState(
                name=f"hp{index}", wcet=wcet, period=period, response_time=response
            )
        )
    wcet = draw(st.integers(min_value=1, max_value=10))
    limit = draw(st.integers(min_value=wcet, max_value=400))
    return num_cores, rt_by_core, states, wcet, limit


class TestMigratingDifferential:
    @pytest.mark.parametrize("kernel_mode", KERNEL_MODES)
    @given(migrating_scenarios(), st.sampled_from(list(CarryInStrategy)))
    @settings(max_examples=150, deadline=None)
    def test_kernel_engine_equals_frozen_seed_engine(
        self, kernel_mode, scenario, strategy
    ):
        num_cores, rt_by_core, states, wcet, limit = scenario
        kernel = security_response_time(
            security_wcet=wcet,
            limit=limit,
            rt_tasks_by_core=rt_by_core,
            higher_security=states,
            num_cores=num_cores,
            strategy=strategy,
            rta_context=RtaContext(num_cores, kernel=kernel_mode),
        )
        frozen = reference_security_response_time(
            security_wcet=wcet,
            limit=limit,
            rt_tasks_by_core=rt_by_core,
            higher_security=states,
            num_cores=num_cores,
            strategy=strategy,
        )
        assert kernel == frozen
