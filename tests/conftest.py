"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.model import Platform, RealTimeTask, SecurityTask, TaskSet
from repro.rover.case_study import rover_rt_allocation, rover_taskset


@pytest.fixture
def dual_core() -> Platform:
    return Platform.dual_core()


@pytest.fixture
def quad_core() -> Platform:
    return Platform.quad_core()


@pytest.fixture
def simple_taskset() -> TaskSet:
    """A small, comfortably schedulable dual-core task set."""
    return TaskSet.create(
        [
            RealTimeTask(name="rt-fast", wcet=2, period=10),
            RealTimeTask(name="rt-slow", wcet=20, period=100),
        ],
        [
            SecurityTask(name="ids-a", wcet=5, max_period=200, coverage_units=10),
            SecurityTask(name="ids-b", wcet=3, max_period=300, coverage_units=6),
        ],
    )


@pytest.fixture
def simple_allocation() -> dict:
    return {"rt-fast": 0, "rt-slow": 1}


@pytest.fixture
def rover() -> TaskSet:
    return rover_taskset()


@pytest.fixture
def rover_allocation() -> dict:
    return rover_rt_allocation()
