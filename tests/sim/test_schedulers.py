"""Unit tests for the per-tick scheduling policies."""

import pytest

from repro.sim.schedulers import (
    GlobalFixedPriorityScheduler,
    PartitionedScheduler,
    ReadyJob,
    SchedulerPolicy,
    SemiPartitionedScheduler,
    make_scheduler,
)


def job(job_id, priority, *, security=False, bound=None, last=None):
    return ReadyJob(
        job_id=job_id,
        task_name=job_id.split("#")[0],
        priority=priority,
        is_security=security,
        bound_core=bound,
        last_core=last,
        release_time=0,
    )


class TestPartitionedScheduler:
    def test_highest_priority_per_core(self):
        scheduler = PartitionedScheduler(2)
        ready = [job("a#0", 1, bound=0), job("b#0", 0, bound=0), job("c#0", 2, bound=1)]
        assignment = scheduler.assign(ready)
        assert assignment == {0: "b#0", 1: "c#0"}

    def test_unbound_job_rejected(self):
        with pytest.raises(ValueError):
            PartitionedScheduler(1).assign([job("a#0", 0)])

    def test_idle_cores_stay_idle(self):
        assert PartitionedScheduler(2).assign([]) == {0: None, 1: None}


class TestSemiPartitionedScheduler:
    def test_rt_first_then_security_on_idle_cores(self):
        scheduler = SemiPartitionedScheduler(2)
        ready = [
            job("rt#0", 0, bound=0),
            job("sec-a#0", 100, security=True),
            job("sec-b#0", 101, security=True),
        ]
        assignment = scheduler.assign(ready)
        assert assignment[0] == "rt#0"
        assert assignment[1] == "sec-a#0"  # only one core left for security

    def test_security_prefers_last_core_when_free(self):
        scheduler = SemiPartitionedScheduler(2)
        ready = [job("sec#0", 100, security=True, last=1)]
        assert scheduler.assign(ready)[1] == "sec#0"

    def test_security_migrates_when_last_core_busy(self):
        scheduler = SemiPartitionedScheduler(2)
        ready = [
            job("rt#0", 0, bound=1),
            job("sec#0", 100, security=True, last=1),
        ]
        assignment = scheduler.assign(ready)
        assert assignment[1] == "rt#0"
        assert assignment[0] == "sec#0"

    def test_rt_job_without_binding_rejected(self):
        with pytest.raises(ValueError):
            SemiPartitionedScheduler(1).assign([job("rt#0", 0)])

    def test_affinity_tie_breaks_on_ascending_core_index(self):
        """Determinism contract regression: a job with no usable affinity
        (never ran, or its last core is taken) lands on the *lowest-index*
        free core, never an arbitrary one."""
        scheduler = SemiPartitionedScheduler(4)
        # No affinity at all: first free core in ascending order.
        assert scheduler.assign(
            [job("sec#0", 100, security=True)]
        )[0] == "sec#0"
        # Core 0 taken by RT, last core 1 also taken: the displaced
        # security job falls through to core 2, not core 3.
        ready = [
            job("rt-a#0", 0, bound=0),
            job("rt-b#0", 1, bound=1),
            job("sec#0", 100, security=True, last=1),
        ]
        assignment = scheduler.assign(ready)
        assert assignment == {0: "rt-a#0", 1: "rt-b#0", 2: "sec#0", 3: None}

    def test_equal_priority_security_jobs_fill_cores_in_key_order(self):
        """Two never-run security jobs with the same priority: the job-id
        tie-break orders them, ascending core order places them."""
        scheduler = SemiPartitionedScheduler(3)
        ready = [
            job("sec-b#0", 100, security=True),
            job("sec-a#0", 100, security=True),
        ]
        assignment = scheduler.assign(ready)
        assert assignment == {0: "sec-a#0", 1: "sec-b#0", 2: None}


class TestGlobalScheduler:
    def test_top_m_jobs_run(self):
        scheduler = GlobalFixedPriorityScheduler(2)
        ready = [job("a#0", 2), job("b#0", 0), job("c#0", 1)]
        assignment = scheduler.assign(ready)
        running = set(assignment.values())
        assert running == {"b#0", "c#0"}

    def test_affinity_preserved(self):
        scheduler = GlobalFixedPriorityScheduler(2)
        ready = [job("a#0", 0, last=1), job("b#0", 1)]
        assignment = scheduler.assign(ready)
        assert assignment[1] == "a#0"
        assert assignment[0] == "b#0"


class TestFactory:
    @pytest.mark.parametrize(
        "policy,expected",
        [
            (SchedulerPolicy.PARTITIONED, PartitionedScheduler),
            ("semi-partitioned", SemiPartitionedScheduler),
            ("global", GlobalFixedPriorityScheduler),
        ],
    )
    def test_make_scheduler(self, policy, expected):
        assert isinstance(make_scheduler(policy, 2), expected)

    def test_invalid_core_count(self):
        with pytest.raises(ValueError):
            make_scheduler(SchedulerPolicy.GLOBAL, 0)
