"""Unit tests for trace data structures."""

import pytest

from repro.sim.trace import ExecutionSlice, JobRecord, SimulationTrace


class TestExecutionSlice:
    def test_properties(self):
        piece = ExecutionSlice("t#0", "t", core=0, start=5, end=9, progress_before=2)
        assert piece.duration == 4
        assert piece.progress_after == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            ExecutionSlice("t#0", "t", core=0, start=5, end=5, progress_before=0)
        with pytest.raises(ValueError):
            ExecutionSlice("t#0", "t", core=0, start=5, end=6, progress_before=-1)


class TestJobRecord:
    def test_response_time(self):
        record = JobRecord("t#0", "t", False, release_time=10, wcet=4, completion_time=18)
        assert record.response_time == 8
        assert record.completed

    def test_deadline_miss(self):
        record = JobRecord(
            "t#0", "t", False, release_time=0, wcet=4, absolute_deadline=10,
            completion_time=12,
        )
        assert record.missed_deadline

    def test_incomplete_job_with_deadline_counts_as_miss(self):
        record = JobRecord("t#0", "t", False, release_time=0, wcet=4, absolute_deadline=10)
        assert record.missed_deadline
        assert record.response_time is None

    def test_security_job_without_deadline_never_misses(self):
        record = JobRecord("s#0", "s", True, release_time=0, wcet=4)
        assert not record.missed_deadline


class TestSimulationTrace:
    def _trace(self):
        trace = SimulationTrace(horizon=20, num_cores=2)
        trace.jobs["a#0"] = JobRecord("a#0", "a", False, 0, 3, 10, completion_time=3)
        trace.jobs["a#1"] = JobRecord("a#1", "a", False, 10, 3, 20, completion_time=14)
        trace.jobs["s#0"] = JobRecord("s#0", "s", True, 0, 5, None, completion_time=9)
        trace.slices.extend(
            [
                ExecutionSlice("a#0", "a", 0, 0, 3, 0),
                ExecutionSlice("s#0", "s", 1, 0, 2, 0),
                ExecutionSlice("s#0", "s", 0, 4, 7, 2),
                ExecutionSlice("a#1", "a", 0, 11, 14, 0),
            ]
        )
        return trace

    def test_slices_for_task_sorted(self):
        trace = self._trace()
        slices = trace.slices_for_task("s")
        assert [s.start for s in slices] == [0, 4]

    def test_jobs_for_task(self):
        assert [j.job_id for j in self._trace().jobs_for_task("a")] == ["a#0", "a#1"]

    def test_completed_jobs_sorted_by_completion(self):
        completed = self._trace().completed_jobs()
        assert [j.job_id for j in completed] == ["a#0", "s#0", "a#1"]

    def test_observed_response_times(self):
        assert self._trace().observed_response_times("a") == [3, 4]

    def test_busy_and_utilization(self):
        trace = self._trace()
        assert trace.busy_time_per_core() == [9, 2]
        assert trace.utilization_per_core() == [pytest.approx(0.45), pytest.approx(0.1)]

    def test_summary_mentions_counts(self):
        assert "jobs=3" in self._trace().summary()
