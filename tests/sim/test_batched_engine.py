"""Differential suite for the trial-batched campaign backend.

The ``batch`` backend advances whole batches of trials of one fixed design
in NumPy lockstep (:func:`repro.sim.batched.simulate_trials_batched`), and
its contract is the same as the fast engine's: every per-trial outcome --
detection latencies, context switches, migrations, preemptions -- must be
*bit-identical* to running the tick oracle (and the event-compressed
engine) trial by trial.  This suite pins that equality over random
jitter/attack seeds x registry schemes x platform models, including the
combinations that force the per-trial fallback path (non-default
platforms, duplicate priorities, negative jitter).
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.framework import SchedulingPolicy, SystemDesign
from repro.errors import AllocationError, SimulationError, UnschedulableError
from repro.model import Platform, RealTimeTask, SecurityTask, TaskSet
from repro.partitioning.allocation import Allocation
from repro.platform import DEFAULT_PLATFORM, PlatformModel
from repro.rover.case_study import RoverCaseStudy, rover_monitors
from repro.schemes import REGISTRY, SharedPhases
from repro.security.attacks import generate_attacks
from repro.security.detection import evaluate_detection
from repro.security.monitors import SecurityMonitor
from repro.sim import (
    SIMULATOR_BACKENDS,
    BatchTrialInput,
    EventCompressedSimulator,
    SimulationConfig,
    Simulator,
    TrialBatchedSimulator,
    resolve_backend,
    simulate_trials_batched,
)

FALLBACK_PLATFORMS = [
    PlatformModel.parse(scheduler, protocol, overheads)
    for scheduler, protocol, overheads in itertools.product(
        ["rm", "edf"], ["none", "pip"], ["zero", "const:2,3"]
    )
    if not (scheduler == "rm" and protocol == "none" and overheads == "zero")
]


def _random_taskset(rng: np.random.Generator) -> TaskSet:
    """Small random task sets (the fast-engine suite's generator, sans
    claims: claims are inert under the default platform and the batch
    engine only batches there anyway)."""
    rt = []
    for index in range(int(rng.integers(1, 4))):
        period = int(rng.integers(20, 400))
        rt.append(
            RealTimeTask(
                name=f"rt{index}",
                wcet=int(rng.integers(1, max(2, period // 4))),
                period=period,
            )
        )
    sec = []
    for index in range(int(rng.integers(1, 4))):
        max_period = int(rng.integers(100, 1500))
        sec.append(
            SecurityTask(
                name=f"sec{index}",
                wcet=int(rng.integers(1, max(2, max_period // 6))),
                max_period=max_period,
                coverage_units=int(rng.integers(1, 24)),
            )
        )
    return TaskSet.create(rt, sec)


def _draw_trials(design, monitors, horizon, rng, count):
    """*count* random trials: an attack scenario plus release jitter."""
    trials = []
    for _ in range(count):
        scenario = generate_attacks(monitors, horizon, rng=rng)
        jitter = {
            task.name: int(rng.integers(0, 200))
            for task in design.taskset.all_tasks
            if rng.random() < 0.5
        }
        trials.append(BatchTrialInput(scenario=scenario, release_jitter=jitter))
    return trials


def _oracle_outcome(design, monitors, trial, horizon, platform, simulator_cls):
    """One trial through *simulator_cls* + detection replay, as the
    campaign runner's per-trial loop would compute it."""
    config = SimulationConfig(
        horizon=horizon,
        fail_on_rt_deadline_miss=False,
        release_jitter=dict(trial.release_jitter),
        platform=platform,
    )
    trace = simulator_cls.from_design(design, config).run()
    detections = evaluate_detection(trace, monitors, trial.scenario)
    return (
        tuple(result.latency for result in detections),
        trace.context_switches,
        trace.migrations,
        trace.preemptions,
    )


def _assert_matches_oracles(design, monitors, trials, horizon, platform):
    """The batched result of every trial equals both per-trial engines."""
    batch = simulate_trials_batched(
        design,
        monitors,
        trials,
        horizon,
        platform=platform,
        fail_on_rt_deadline_miss=False,
    )
    assert len(batch.results) == len(trials)
    assert batch.batched_trials + batch.fallback_trials == len(trials)
    for trial, result in zip(trials, batch.results):
        got = (
            result.latencies,
            result.context_switches,
            result.migrations,
            result.preemptions,
        )
        for simulator_cls in (Simulator, EventCompressedSimulator):
            assert got == _oracle_outcome(
                design, monitors, trial, horizon, platform, simulator_cls
            )
    return batch


def _design_and_monitors(scheme, num_cores, rng):
    """A random schedulable design for *scheme*, or ``None``."""
    taskset = _random_taskset(rng)
    try:
        design = REGISTRY.create(scheme, Platform(num_cores=num_cores)).design(
            taskset, SharedPhases()
        )
    except (UnschedulableError, AllocationError):
        return None
    if not design.schedulable:
        return None
    monitors = [
        SecurityMonitor.for_task(task) for task in design.taskset.security_tasks
    ]
    return design, monitors


class TestRegistration:
    def test_batch_backend_is_registered(self):
        assert SIMULATOR_BACKENDS["batch"] is TrialBatchedSimulator
        assert resolve_backend("batch") is TrialBatchedSimulator

    def test_single_run_face_is_the_fast_engine(self):
        """A width-one ``.run()`` inherits the event-compressed engine, so
        the registry face is bit-identical to ``fast`` by construction."""
        assert issubclass(TrialBatchedSimulator, EventCompressedSimulator)
        design = RoverCaseStudy().hydra_c_design()
        config = SimulationConfig(horizon=9_000)
        assert (
            TrialBatchedSimulator.from_design(design, config).run()
            == EventCompressedSimulator.from_design(design, config).run()
        )


class TestDifferential:
    """Hypothesis campaigns: batched == tick == fast, everywhere."""

    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        scheme=st.sampled_from(REGISTRY.names()),
        design_seed=st.integers(min_value=0, max_value=2**32 - 1),
        trial_seed=st.integers(min_value=0, max_value=2**32 - 1),
        num_cores=st.integers(min_value=1, max_value=3),
        horizon=st.integers(min_value=100, max_value=3_000),
        num_trials=st.integers(min_value=1, max_value=4),
    )
    def test_default_platform_lockstep(
        self, scheme, design_seed, trial_seed, num_cores, horizon, num_trials
    ):
        """Under the default platform (the lockstep envelope) every trial's
        outcome matches both per-trial engines bit for bit."""
        built = _design_and_monitors(
            scheme, num_cores, np.random.default_rng(design_seed)
        )
        if built is None:
            return
        design, monitors = built
        trials = _draw_trials(
            design, monitors, horizon, np.random.default_rng(trial_seed),
            num_trials,
        )
        _assert_matches_oracles(
            design, monitors, trials, horizon, DEFAULT_PLATFORM
        )

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        scheme=st.sampled_from(REGISTRY.names()),
        design_seed=st.integers(min_value=0, max_value=2**32 - 1),
        trial_seed=st.integers(min_value=0, max_value=2**32 - 1),
        horizon=st.integers(min_value=100, max_value=2_000),
        platform=st.sampled_from(FALLBACK_PLATFORMS),
    )
    def test_non_default_platform_falls_back_with_equal_outcomes(
        self, scheme, design_seed, trial_seed, horizon, platform
    ):
        """Outside the envelope the batch backend must hand every trial to
        the event-compressed engine -- same outcomes, fallback recorded."""
        built = _design_and_monitors(
            scheme, 2, np.random.default_rng(design_seed)
        )
        if built is None:
            return
        design, monitors = built
        trials = _draw_trials(
            design, monitors, horizon, np.random.default_rng(trial_seed), 3
        )
        batch = _assert_matches_oracles(
            design, monitors, trials, horizon, platform
        )
        assert batch.batched_trials == 0
        assert batch.fallback_trials == len(trials)
        assert all(not result.batched for result in batch.results)


class TestEnvelope:
    """Deterministic pins of the batch/fallback split and edge cases."""

    def _rover(self):
        design = RoverCaseStudy().hydra_c_design()
        return design, rover_monitors()

    def test_rover_trials_are_batched(self):
        design, monitors = self._rover()
        rng = np.random.default_rng(2020)
        trials = _draw_trials(design, monitors, 9_000, rng, 6)
        batch = _assert_matches_oracles(
            design, monitors, trials, 9_000, DEFAULT_PLATFORM
        )
        assert batch.batched_trials == len(trials)
        assert batch.fallback_trials == 0
        assert all(result.batched for result in batch.results)

    def test_per_trial_fallback_inside_a_batched_batch(self):
        """A trial that leaves the lockstep state model falls back *alone*;
        its batchmates stay on the lockstep path, and every outcome still
        matches the oracles.

        The trigger: concurrent jobs of one RT task (a release overlap,
        which the one-job-per-task lockstep arrays cannot represent).  On
        one core, ``blocker`` (higher priority, 6 of every 8 ticks) starves
        ``victim`` past its own period -- but only in trials where
        ``blocker`` is released inside the horizon at all.
        """
        taskset = TaskSet.create(
            [
                RealTimeTask(name="blocker", wcet=6, period=8),
                RealTimeTask(name="victim", wcet=3, period=12),
            ],
            [SecurityTask(name="sec", wcet=1, max_period=50)],
        )
        design = SystemDesign(
            scheme="HYDRA-C",
            policy=SchedulingPolicy.SEMI_PARTITIONED,
            taskset=taskset,
            platform=Platform(num_cores=1),
            rt_allocation=Allocation({"blocker": 0, "victim": 0}),
        )
        monitors = [
            SecurityMonitor.for_task(task)
            for task in design.taskset.security_tasks
        ]
        rng = np.random.default_rng(11)
        quiet = {"blocker": 500}  # released past the horizon: no contention
        trials = [
            BatchTrialInput(
                scenario=generate_attacks(monitors, 100, rng=rng),
                release_jitter=jitter,
            )
            for jitter in (quiet, {}, quiet)
        ]
        batch = _assert_matches_oracles(
            design, monitors, trials, 100, DEFAULT_PLATFORM
        )
        assert [result.batched for result in batch.results] == [
            True,
            False,
            True,
        ]

    def test_unknown_jitter_key_raises_like_the_engines(self):
        """A jitter key naming no task is a configuration error in the
        engines; the batch backend must surface the same error rather than
        silently ignoring the key."""
        design, monitors = self._rover()
        scenario = generate_attacks(
            monitors, 2_000, rng=np.random.default_rng(5)
        )
        bad = BatchTrialInput(
            scenario=scenario, release_jitter={"no-such-task": 5}
        )
        with pytest.raises(SimulationError, match="no-such-task"):
            simulate_trials_batched(design, monitors, [bad], 2_000)

    def test_empty_trials_is_an_empty_result(self):
        design, monitors = self._rover()
        batch = simulate_trials_batched(design, monitors, [], 9_000)
        assert batch.results == ()
        assert batch.batched_trials == 0
        assert batch.fallback_trials == 0

    def test_nonpositive_horizon_rejected(self):
        design, monitors = self._rover()
        with pytest.raises(ValueError):
            simulate_trials_batched(design, monitors, [], 0)

    def test_rt_deadline_miss_raises_like_the_engines(self):
        """``fail_on_rt_deadline_miss=True`` (the campaign default) must
        surface the engines' SimulationError, not a silent number.  The
        registry would refuse this overloaded single core, so the design is
        assembled by hand (the fast-engine suite's overload scenario)."""
        taskset = TaskSet.create(
            [
                RealTimeTask(name="hog", wcet=9, period=10),
                RealTimeTask(name="starved", wcet=5, period=12),
            ],
            [SecurityTask(name="sec", wcet=4, max_period=50)],
        )
        design = SystemDesign(
            scheme="HYDRA-C",
            policy=SchedulingPolicy.SEMI_PARTITIONED,
            taskset=taskset,
            platform=Platform(num_cores=1),
            rt_allocation=Allocation({"hog": 0, "starved": 0}),
        )
        monitors = [
            SecurityMonitor.for_task(task)
            for task in design.taskset.security_tasks
        ]
        scenario = generate_attacks(monitors, 100, rng=np.random.default_rng(3))
        trial = BatchTrialInput(scenario=scenario, release_jitter={})
        with pytest.raises(SimulationError, match="deadline miss"):
            Simulator.from_design(design, SimulationConfig(horizon=100)).run()
        with pytest.raises(SimulationError, match="deadline miss"):
            simulate_trials_batched(design, monitors, [trial], 100)
        # With the check off, the trial simulates and matches the oracles.
        _assert_matches_oracles(
            design, monitors, [trial], 100, DEFAULT_PLATFORM
        )
