"""Unit and integration tests for the tick-accurate simulator."""

import pytest

from repro.core.framework import HydraC
from repro.errors import SimulationError
from repro.model import Platform, RealTimeTask, SecurityTask, TaskSet
from repro.sim.engine import SimulationConfig, Simulator, simulate_design
from repro.sim.schedulers import SchedulerPolicy


def single_rt_taskset():
    return TaskSet.create([RealTimeTask(name="rt", wcet=2, period=5)], [])


class TestSimulationConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(horizon=0)
        with pytest.raises(ValueError):
            SimulationConfig(horizon=10, release_jitter={"t": -1})


class TestBasicScheduling:
    def test_single_rt_task_runs_periodically(self):
        sim = Simulator(
            single_rt_taskset(),
            num_cores=1,
            policy=SchedulerPolicy.PARTITIONED,
            rt_allocation={"rt": 0},
            config=SimulationConfig(horizon=20),
        )
        trace = sim.run()
        jobs = trace.jobs_for_task("rt")
        assert len(jobs) == 4
        assert all(job.response_time == 2 for job in jobs)
        assert trace.busy_time_per_core() == [8]

    def test_preemption_by_higher_priority(self):
        taskset = TaskSet.create(
            [
                RealTimeTask(name="hi", wcet=1, period=4),
                RealTimeTask(name="lo", wcet=4, period=10),
            ],
            [],
        )
        sim = Simulator(
            taskset,
            num_cores=1,
            policy=SchedulerPolicy.PARTITIONED,
            rt_allocation={"hi": 0, "lo": 0},
            config=SimulationConfig(horizon=20),
        )
        trace = sim.run()
        # lo runs in [1,4), is preempted by hi's second job at t=4, and
        # finishes its last tick in [5,6).
        assert trace.preemptions >= 1
        lo_jobs = trace.jobs_for_task("lo")
        assert lo_jobs[0].response_time == 6

    def test_observed_response_never_exceeds_analysis_bound(self, rover, rover_allocation, dual_core):
        design = HydraC(dual_core).design(rover, rover_allocation)
        trace = simulate_design(design, horizon=30_000)
        for task_name, bound in design.response_times.items():
            for observed in trace.observed_response_times(task_name):
                assert observed <= bound

    def test_security_tasks_never_delay_rt_tasks(self, rover, rover_allocation, dual_core):
        design = HydraC(dual_core).design(rover, rover_allocation)
        trace = simulate_design(design, horizon=20_000)
        for job in trace.jobs_for_task("navigation"):
            if job.completed:
                assert job.response_time <= 240 + 0  # runs alone on core 0

    def test_deadline_miss_detection(self):
        taskset = TaskSet.create(
            [
                RealTimeTask(name="a", wcet=6, period=10),
                RealTimeTask(name="b", wcet=6, period=10),
            ],
            [],
        )
        sim = Simulator(
            taskset,
            num_cores=1,
            policy=SchedulerPolicy.PARTITIONED,
            rt_allocation={"a": 0, "b": 0},
            config=SimulationConfig(horizon=40),
        )
        with pytest.raises(SimulationError, match="deadline miss"):
            sim.run()

    def test_deadline_miss_tolerated_when_configured(self):
        taskset = TaskSet.create(
            [
                RealTimeTask(name="a", wcet=6, period=10),
                RealTimeTask(name="b", wcet=6, period=10),
            ],
            [],
        )
        sim = Simulator(
            taskset,
            num_cores=1,
            policy=SchedulerPolicy.PARTITIONED,
            rt_allocation={"a": 0, "b": 0},
            config=SimulationConfig(horizon=40, fail_on_rt_deadline_miss=False),
        )
        trace = sim.run()
        assert len(trace.deadline_misses()) > 0

    def test_missing_binding_rejected(self):
        with pytest.raises(SimulationError):
            Simulator(
                single_rt_taskset(),
                num_cores=1,
                policy=SchedulerPolicy.PARTITIONED,
                rt_allocation={},
            )


class TestMigrationBehaviour:
    def test_semi_partitioned_security_task_migrates(self):
        """A security task displaced by an RT job should continue on the idle core."""
        taskset = TaskSet.create(
            [RealTimeTask(name="rt", wcet=5, period=10)],
            [SecurityTask(name="ids", wcet=8, max_period=40, period=20)],
        )
        sim = Simulator(
            taskset,
            num_cores=2,
            policy=SchedulerPolicy.SEMI_PARTITIONED,
            rt_allocation={"rt": 0},
            config=SimulationConfig(horizon=40),
        )
        trace = sim.run()
        ids_jobs = trace.jobs_for_task("ids")
        assert ids_jobs[0].completed
        # With an idle second core the monitor is never blocked: it completes
        # in exactly its WCET.
        assert ids_jobs[0].response_time == 8

    def test_partitioned_security_task_cannot_migrate(self):
        taskset = TaskSet.create(
            [RealTimeTask(name="rt", wcet=5, period=10)],
            [SecurityTask(name="ids", wcet=8, max_period=40, period=20)],
        )
        sim = Simulator(
            taskset,
            num_cores=2,
            policy=SchedulerPolicy.PARTITIONED,
            rt_allocation={"rt": 0},
            security_allocation={"ids": 0},
            config=SimulationConfig(horizon=40),
        )
        trace = sim.run()
        ids_jobs = trace.jobs_for_task("ids")
        # Pinned behind the RT task: 8 ticks of work plus two 5-tick RT jobs.
        assert ids_jobs[0].response_time == 18
        assert trace.migrations == 0

    def test_global_policy_runs_highest_priority_jobs(self):
        taskset = TaskSet.create(
            [
                RealTimeTask(name="a", wcet=4, period=10),
                RealTimeTask(name="b", wcet=4, period=10),
                RealTimeTask(name="c", wcet=4, period=10),
            ],
            [],
        )
        sim = Simulator(
            taskset,
            num_cores=2,
            policy=SchedulerPolicy.GLOBAL,
            config=SimulationConfig(horizon=10),
        )
        trace = sim.run()
        assert trace.jobs_for_task("c")[0].response_time == 8

    def test_hydra_c_has_migrations_on_rover(self, rover, rover_allocation, dual_core):
        design = HydraC(dual_core).design(rover, rover_allocation)
        trace = simulate_design(design, horizon=30_000)
        assert trace.migrations > 0
        assert trace.context_switches > 0
