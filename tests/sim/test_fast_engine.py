"""Differential tests: the event-compressed backend vs. the tick oracle.

The fast backend's contract is *bit-identical traces*: same execution
slices in the same order, same job records, same context-switch /
migration / preemption counters.  The tick engine stays frozen as the slow
oracle, so every test here compares full :class:`SimulationTrace` objects
(dataclass equality covers all fields) and, where monitors exist, the
derived detection metrics too.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import AllocationError, SimulationError, UnschedulableError
from repro.model import Platform, RealTimeTask, SecurityTask, TaskSet
from repro.rover.case_study import RoverCaseStudy, rover_monitors
from repro.schemes import REGISTRY, SharedPhases
from repro.security.attacks import generate_attacks
from repro.security.detection import evaluate_detection
from repro.security.monitors import SecurityMonitor
from repro.sim import (
    EventCompressedSimulator,
    SimulationConfig,
    Simulator,
    resolve_backend,
    simulate_design,
    simulate_design_fast,
)


def both_traces(taskset, num_cores, policy, config, **allocations):
    """Run both backends on identical inputs and return (tick, fast)."""
    tick = Simulator(taskset, num_cores, policy, config=config, **allocations).run()
    fast = EventCompressedSimulator(
        taskset, num_cores, policy, config=config, **allocations
    ).run()
    return tick, fast


class TestBackendEqualitySimple:
    @pytest.mark.parametrize("horizon", [1, 7, 100, 1_000])
    def test_semi_partitioned_equal(self, simple_taskset, simple_allocation, horizon):
        config = SimulationConfig(horizon=horizon)
        tick, fast = both_traces(
            simple_taskset,
            2,
            "semi-partitioned",
            config,
            rt_allocation=simple_allocation,
        )
        assert tick == fast

    def test_partitioned_equal(self, simple_taskset, simple_allocation):
        config = SimulationConfig(horizon=800)
        tick, fast = both_traces(
            simple_taskset,
            2,
            "partitioned",
            config,
            rt_allocation=simple_allocation,
            security_allocation={"ids-a": 0, "ids-b": 1},
        )
        assert tick == fast

    def test_global_equal(self, simple_taskset):
        config = SimulationConfig(horizon=800)
        tick, fast = both_traces(simple_taskset, 2, "global", config)
        assert tick == fast

    def test_release_jitter_equal(self, simple_taskset, simple_allocation):
        config = SimulationConfig(
            horizon=600,
            release_jitter={"rt-fast": 3, "ids-a": 151, "rt-slow": 40},
        )
        tick, fast = both_traces(
            simple_taskset,
            2,
            "semi-partitioned",
            config,
            rt_allocation=simple_allocation,
        )
        assert tick == fast

    def test_overloaded_system_equal(self):
        """An overloaded single core exercises deadline misses, starvation
        and never-completing jobs (with the miss check disabled)."""
        taskset = TaskSet.create(
            [
                RealTimeTask(name="hog", wcet=9, period=10),
                RealTimeTask(name="starved", wcet=5, period=12),
            ],
            [SecurityTask(name="sec", wcet=4, max_period=50)],
        )
        config = SimulationConfig(horizon=500, fail_on_rt_deadline_miss=False)
        tick, fast = both_traces(
            taskset,
            1,
            "semi-partitioned",
            config,
            rt_allocation={"hog": 0, "starved": 0},
        )
        assert tick == fast
        assert tick.deadline_misses()  # the scenario really is overloaded

    def test_fast_backend_raises_same_rt_deadline_miss(self):
        taskset = TaskSet.create(
            [
                RealTimeTask(name="hog", wcet=9, period=10),
                RealTimeTask(name="starved", wcet=5, period=12),
            ],
            [],
        )
        config = SimulationConfig(horizon=100)
        for backend in (Simulator, EventCompressedSimulator):
            with pytest.raises(SimulationError, match="deadline miss"):
                backend(
                    taskset,
                    1,
                    "partitioned",
                    rt_allocation={"hog": 0, "starved": 0},
                    config=config,
                ).run()


class TestBackendEqualityRover:
    def test_rover_designs_bit_identical(self):
        study = RoverCaseStudy()
        config = SimulationConfig(horizon=15_000)
        for design in (study.hydra_c_design(), study.hydra_design()):
            tick = Simulator.from_design(design, config).run()
            fast = EventCompressedSimulator.from_design(design, config).run()
            assert tick == fast

    def test_rover_detection_metrics_identical(self):
        study = RoverCaseStudy()
        design = study.hydra_c_design()
        monitors = rover_monitors()
        config = SimulationConfig(horizon=15_000)
        scenario = generate_attacks(
            monitors, 15_000, rng=np.random.default_rng(42)
        )
        tick = Simulator.from_design(design, config).run()
        fast = EventCompressedSimulator.from_design(design, config).run()
        assert evaluate_detection(tick, monitors, scenario) == evaluate_detection(
            fast, monitors, scenario
        )


#: Small security-task pool with coverage units so detection is evaluable.
def _random_taskset(rng: np.random.Generator) -> TaskSet:
    rt = []
    for index in range(int(rng.integers(1, 4))):
        period = int(rng.integers(20, 400))
        wcet = int(rng.integers(1, max(2, period // 4)))
        rt.append(RealTimeTask(name=f"rt{index}", wcet=wcet, period=period))
    sec = []
    for index in range(int(rng.integers(1, 4))):
        max_period = int(rng.integers(100, 1500))
        wcet = int(rng.integers(1, max(2, max_period // 6)))
        sec.append(
            SecurityTask(
                name=f"sec{index}",
                wcet=wcet,
                max_period=max_period,
                coverage_units=int(rng.integers(1, 24)),
            )
        )
    return TaskSet.create(rt, sec)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    scheme=st.sampled_from(REGISTRY.names()),
    design_seed=st.integers(min_value=0, max_value=2**32 - 1),
    attack_seed=st.integers(min_value=0, max_value=2**32 - 1),
    num_cores=st.integers(min_value=1, max_value=3),
    horizon=st.integers(min_value=1, max_value=3_000),
)
def test_differential_registry_schemes(
    scheme, design_seed, attack_seed, num_cores, horizon
):
    """Any registered scheme's design simulates identically on both backends,
    including the detection metrics of a random attack scenario."""
    rng = np.random.default_rng(design_seed)
    taskset = _random_taskset(rng)
    platform = Platform(num_cores=num_cores)
    try:
        design = REGISTRY.create(scheme, platform).design(taskset, SharedPhases())
    except (UnschedulableError, AllocationError):
        return  # the scheme rejected this random task set; nothing to compare
    if not design.schedulable:
        return
    jitter = {
        task.name: int(rng.integers(0, 100))
        for task in taskset.all_tasks
        if rng.random() < 0.5
    }
    tick = simulate_design(design, horizon, release_jitter=jitter)
    fast = simulate_design_fast(design, horizon, release_jitter=jitter)
    assert tick == fast

    monitors = [
        SecurityMonitor.for_task(task) for task in design.taskset.security_tasks
    ]
    scenario = generate_attacks(
        monitors, horizon, rng=np.random.default_rng(attack_seed)
    )
    assert evaluate_detection(tick, monitors, scenario) == evaluate_detection(
        fast, monitors, scenario
    )


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    taskset_seed=st.integers(min_value=0, max_value=2**32 - 1),
    policy=st.sampled_from(["partitioned", "semi-partitioned", "global"]),
    num_cores=st.integers(min_value=1, max_value=4),
    horizon=st.integers(min_value=1, max_value=2_000),
)
def test_differential_raw_policies(taskset_seed, policy, num_cores, horizon):
    """Backend equality holds for arbitrary (even unschedulable) task sets
    under every runtime policy, with random bindings and jitter."""
    rng = np.random.default_rng(taskset_seed)
    taskset = _random_taskset(rng)
    rt_allocation = {
        task.name: int(rng.integers(0, num_cores)) for task in taskset.rt_tasks
    }
    security_allocation = {
        task.name: int(rng.integers(0, num_cores))
        for task in taskset.security_tasks
    }
    jitter = {
        task.name: int(rng.integers(0, 300))
        for task in taskset.all_tasks
        if rng.random() < 0.5
    }
    config = SimulationConfig(
        horizon=horizon, fail_on_rt_deadline_miss=False, release_jitter=jitter
    )
    tick, fast = both_traces(
        taskset,
        num_cores,
        policy,
        config,
        rt_allocation=rt_allocation,
        security_allocation=security_allocation,
    )
    assert tick == fast


class TestReleaseJitterValidation:
    """Regression: unknown task names in release_jitter must be loud."""

    @pytest.mark.parametrize(
        "backend", [Simulator, EventCompressedSimulator]
    )
    def test_unknown_jitter_task_raises(
        self, backend, simple_taskset, simple_allocation
    ):
        config = SimulationConfig(
            horizon=100, release_jitter={"no-such-task": 5}
        )
        with pytest.raises(SimulationError, match="no-such-task"):
            backend(
                simple_taskset,
                2,
                "semi-partitioned",
                rt_allocation=simple_allocation,
                config=config,
            )

    def test_known_jitter_tasks_accepted(self, simple_taskset, simple_allocation):
        config = SimulationConfig(
            horizon=100, release_jitter={"rt-fast": 5, "ids-b": 7}
        )
        trace = Simulator(
            simple_taskset,
            2,
            "semi-partitioned",
            rt_allocation=simple_allocation,
            config=config,
        ).run()
        assert trace.jobs_for_task("rt-fast")[0].release_time == 5

    def test_simulate_design_propagates_validation(self):
        design = RoverCaseStudy().hydra_c_design()
        with pytest.raises(SimulationError, match="typo-task"):
            simulate_design(design, 1_000, release_jitter={"typo-task": 1})


class TestBackendResolver:
    def test_resolves_both_backends(self):
        assert resolve_backend("tick") is Simulator
        assert resolve_backend("fast") is EventCompressedSimulator

    def test_unknown_backend_is_an_error(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="unknown simulation backend"):
            resolve_backend("warp")
