"""Unit and property tests for the partitioning heuristics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AllocationError
from repro.model import Platform, RealTimeTask, TaskSet
from repro.partitioning.heuristics import (
    FitStrategy,
    partition_rt_tasks,
    partition_utilizations,
)
from repro.schedulability.partitioned import partitioned_rt_schedulable


def taskset(*specs):
    return TaskSet.create(
        [RealTimeTask(name=f"t{i}", wcet=c, period=p) for i, (c, p) in enumerate(specs)],
        [],
    )


class TestPartitionRtTasks:
    def test_resulting_partition_is_schedulable(self, dual_core):
        tasks = taskset((2, 10), (6, 20), (3, 15), (4, 40))
        for strategy in FitStrategy:
            allocation = partition_rt_tasks(tasks, dual_core, strategy)
            result = partitioned_rt_schedulable(tasks, allocation.mapping, dual_core)
            assert result.schedulable, strategy

    def test_every_task_allocated(self, quad_core):
        tasks = taskset(*[(1, 10)] * 12)
        allocation = partition_rt_tasks(tasks, quad_core)
        assert len(allocation) == 12

    def test_worst_fit_spreads_load(self, dual_core):
        tasks = taskset((4, 10), (4, 10))
        allocation = partition_rt_tasks(tasks, dual_core, FitStrategy.WORST_FIT)
        cores = {allocation.core_of("t0"), allocation.core_of("t1")}
        assert cores == {0, 1}

    def test_best_fit_packs_load(self, dual_core):
        tasks = taskset((2, 10), (1, 10))
        allocation = partition_rt_tasks(tasks, dual_core, FitStrategy.BEST_FIT)
        assert allocation.core_of("t0") == allocation.core_of("t1")

    def test_infeasible_taskset_raises(self, dual_core):
        tasks = taskset((9, 10), (9, 10), (9, 10))
        with pytest.raises(AllocationError):
            partition_rt_tasks(tasks, dual_core)

    def test_empty_taskset(self, dual_core):
        assert len(partition_rt_tasks(TaskSet.create([], []), dual_core)) == 0

    @given(
        utilizations=st.lists(st.floats(0.05, 0.6), min_size=1, max_size=8),
        strategy=st.sampled_from(list(FitStrategy)),
    )
    @settings(max_examples=80, deadline=None)
    def test_allocation_never_overloads_a_core(self, utilizations, strategy):
        platform = Platform.quad_core()
        tasks = TaskSet.create(
            [
                RealTimeTask(name=f"t{i}", wcet=max(1, int(u * 100)), period=100)
                for i, u in enumerate(utilizations)
            ],
            [],
        )
        try:
            allocation = partition_rt_tasks(tasks, platform, strategy)
        except AllocationError:
            return
        utils = allocation.core_utilizations(tasks, platform)
        assert all(value <= 1.0 + 1e-9 for value in utils)


class TestPartitionUtilizations:
    def test_basic_packing(self):
        mapping = partition_utilizations(
            [("a", 0.5), ("b", 0.4), ("c", 0.6)], num_bins=2
        )
        assert set(mapping) == {"a", "b", "c"}

    def test_respects_capacity(self):
        with pytest.raises(AllocationError):
            partition_utilizations([("a", 0.9), ("b", 0.9), ("c", 0.9)], num_bins=2)

    def test_first_fit_order(self):
        mapping = partition_utilizations(
            [("a", 0.5), ("b", 0.5)], num_bins=2, strategy=FitStrategy.FIRST_FIT
        )
        assert mapping["a"] == 0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            partition_utilizations([("a", 0.5)], num_bins=0)
        with pytest.raises(ValueError):
            partition_utilizations([("a", -0.5)], num_bins=1)
