"""Unit tests for the Allocation value object."""

import pytest

from repro.model import Platform, RealTimeTask, SecurityTask, TaskSet
from repro.partitioning.allocation import Allocation


class TestAllocation:
    def test_basic_queries(self):
        allocation = Allocation({"nav": 0, "camera": 1})
        assert allocation.core_of("nav") == 0
        assert "camera" in allocation
        assert len(allocation) == 2
        assert allocation.tasks_on_core(1) == ("camera",)
        assert allocation.used_cores() == (0, 1)

    def test_unknown_task(self):
        with pytest.raises(KeyError):
            Allocation({"nav": 0}).core_of("camera")

    def test_validation(self):
        with pytest.raises(ValueError):
            Allocation({"nav": -1})
        with pytest.raises(TypeError):
            Allocation({"nav": 1.5})
        with pytest.raises(ValueError):
            Allocation({"": 0})

    def test_immutability(self):
        allocation = Allocation({"nav": 0})
        with pytest.raises(TypeError):
            allocation.mapping["nav"] = 1

    def test_merged_with(self):
        merged = Allocation({"a": 0}).merged_with({"b": 1})
        assert merged.core_of("b") == 1
        with pytest.raises(ValueError):
            merged.merged_with({"a": 1})

    def test_restricted_to(self):
        allocation = Allocation({"a": 0, "b": 1, "c": 0})
        assert allocation.restricted_to(["a", "c"]).as_dict() == {"a": 0, "c": 0}

    def test_core_utilizations(self, dual_core):
        taskset = TaskSet.create(
            [RealTimeTask(name="a", wcet=2, period=10), RealTimeTask(name="b", wcet=5, period=10)],
            [SecurityTask(name="s", wcet=10, max_period=100)],
        )
        allocation = Allocation({"a": 0, "b": 1, "s": 1})
        utils = allocation.core_utilizations(taskset, dual_core)
        assert utils[0] == pytest.approx(0.2)
        assert utils[1] == pytest.approx(0.5 + 0.1)

    def test_core_utilizations_out_of_range(self, dual_core):
        taskset = TaskSet.create([RealTimeTask(name="a", wcet=2, period=10)], [])
        with pytest.raises(ValueError):
            Allocation({"a": 5}).core_utilizations(taskset, dual_core)

    def test_empty(self):
        assert len(Allocation.empty()) == 0
