"""Backend-parity suite for the pluggable checkpoint stores.

Every registered backend (jsonl, sqlite, shards) must uphold the same
contract -- fingerprint guard, duplicate detection, deterministic resume --
and ``--checkpoint`` URI resolution must keep plain paths meaning exactly
what they always meant.  The parametrised half of this suite runs each
guarantee against all three backends; the rest pins the URI grammar, the
backend-specific failure modes (foreign SQLite files, conflicting shards)
and cross-backend equivalence of the persisted result stream.
"""

import dataclasses
import json
import sqlite3

import pytest

from repro.batch.results import TasksetEvaluation
from repro.batch.store import (
    JsonlResultStore,
    open_result_store,
)
from repro.campaign.store import open_campaign_store
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.storage import backend_names, parse_store_uri
from repro.storage.shards import DEFAULT_WRITER


def make_evaluation(group_index=0):
    return TasksetEvaluation(
        group_index=group_index,
        normalized_utilization=0.42,
        num_rt_tasks=6,
        num_security_tasks=4,
        max_periods={"ids-a": 2000, "ids-b": 1700},
        schedulable={"HYDRA-C": True, "HYDRA": False},
        periods={"HYDRA-C": {"ids-a": 910, "ids-b": 1700}, "HYDRA": None},
    )


@pytest.fixture
def config():
    return ExperimentConfig(num_cores=2, tasksets_per_group=3, seed=7)


def jsonl_uri(directory):
    return str(directory / "ck.jsonl")


def sqlite_uri(directory):
    return f"sqlite:{directory / 'ck.db'}"


def shards_uri(directory):
    return f"shards:{directory / 'ck.d'}"


URI_BUILDERS = [jsonl_uri, sqlite_uri, shards_uri]
URI_IDS = ["jsonl", "sqlite", "shards"]


def snapshot(uri, directory):
    """The backend's persisted state, in comparable form.

    Bytes for the file backends (the byte-for-byte resume guarantee),
    ordered header+result rows for sqlite (its row-for-row analogue).
    """
    if uri.startswith("sqlite:"):
        connection = sqlite3.connect(uri[len("sqlite:") :])
        try:
            header = connection.execute(
                "SELECT record FROM meta WHERE field='header'"
            ).fetchone()
            rows = connection.execute(
                "SELECT seq, record FROM results ORDER BY seq"
            ).fetchall()
            return (header, tuple(rows))
        finally:
            connection.close()
    if uri.startswith("shards:"):
        base = directory / "ck.d"
        return {
            shard.name: shard.read_bytes() for shard in base.glob("*.jsonl")
        }
    return (directory / "ck.jsonl").read_bytes()


class TestUriParsing:
    def test_plain_path_means_jsonl(self):
        parsed = parse_store_uri("runs/sweep.jsonl")
        assert parsed.backend == "jsonl"
        assert parsed.path == "runs/sweep.jsonl"
        assert dict(parsed.options) == {}

    def test_unregistered_scheme_is_part_of_the_path(self):
        """Colons are legal in POSIX filenames; only registered backend
        names act as URI schemes."""
        parsed = parse_store_uri("backup:2024/sweep.jsonl")
        assert parsed.backend == "jsonl"
        assert parsed.path == "backup:2024/sweep.jsonl"

    def test_registered_schemes_select_their_backend(self):
        assert set(backend_names()) >= {"jsonl", "sqlite", "shards"}
        for name in ("jsonl", "sqlite", "shards"):
            parsed = parse_store_uri(f"{name}:somewhere/ck")
            assert parsed.backend == name
            assert parsed.path == "somewhere/ck"

    def test_writer_option_parsed(self):
        parsed = parse_store_uri("shards:run.d?writer=w3")
        assert parsed.backend == "shards"
        assert parsed.path == "run.d"
        assert dict(parsed.options) == {"writer": "w3"}

    def test_missing_path_rejected(self):
        with pytest.raises(ConfigurationError, match="missing a path"):
            parse_store_uri("sqlite:")

    def test_unknown_option_rejected(self):
        with pytest.raises(ConfigurationError, match="does not accept"):
            parse_store_uri("shards:run.d?compression=gz")
        with pytest.raises(ConfigurationError, match="does not accept"):
            parse_store_uri("jsonl:run.jsonl?writer=w1")

    def test_malformed_and_repeated_options_rejected(self):
        with pytest.raises(ConfigurationError, match="key=value"):
            parse_store_uri("shards:run.d?writer")
        with pytest.raises(ConfigurationError, match="repeats option"):
            parse_store_uri("shards:run.d?writer=a&writer=b")


@pytest.mark.parametrize("uri_for", URI_BUILDERS, ids=URI_IDS)
class TestBackendContract:
    """The guarantees every registered backend must uphold."""

    def test_fresh_store_loads_empty_and_round_trips(
        self, tmp_path, config, uri_for
    ):
        uri = uri_for(tmp_path)
        store = open_result_store(uri, config)
        assert store.load() == {}
        evaluation = make_evaluation()
        store.append_chunk([(0, evaluation), (1, None)])
        store.append_chunk([(2, evaluation)])
        reloaded = open_result_store(uri, config).load()
        assert reloaded == {0: evaluation, 1: None, 2: evaluation}

    def test_empty_chunk_is_a_noop(self, tmp_path, config, uri_for):
        uri = uri_for(tmp_path)
        open_result_store(uri, config).load()
        before = snapshot(uri, tmp_path)
        open_result_store(uri, config).append_chunk([])
        assert snapshot(uri, tmp_path) == before

    def test_mismatched_fingerprint_rejected(self, tmp_path, config, uri_for):
        uri = uri_for(tmp_path)
        open_result_store(uri, config).load()
        other = dataclasses.replace(config, num_cores=4)
        with pytest.raises(ConfigurationError, match="different sweep"):
            open_result_store(uri, other).load()

    def test_duplicate_result_key_rejected(self, tmp_path, config, uri_for):
        """Regression: a stream holding the same result key twice is
        corrupt and must fail loudly on load, not silently resume from
        whichever copy came last."""
        uri = uri_for(tmp_path)
        store = open_result_store(uri, config)
        store.load()
        store.append_chunk([(0, make_evaluation())])
        store.append_chunk([(0, None)])  # same key, different payload
        with pytest.raises(
            ConfigurationError, match="duplicate result key 0"
        ):
            open_result_store(uri, config).load()

    def test_resume_reproduces_the_uninterrupted_store(
        self, tmp_path, config, uri_for
    ):
        """Straight run vs killed-and-resumed run: identical persisted
        state (byte-for-byte for the file backends, row-for-row for
        sqlite) and identical loads."""
        first = [(0, make_evaluation()), (1, None)]
        second = [(2, make_evaluation(1))]

        straight_dir = tmp_path / "straight"
        straight_dir.mkdir()
        uri = uri_for(straight_dir)
        store = open_result_store(uri, config)
        store.load()
        store.append_chunk(first)
        store.append_chunk(second)
        expected = snapshot(uri, straight_dir)

        resumed_dir = tmp_path / "resumed"
        resumed_dir.mkdir()
        uri = uri_for(resumed_dir)
        store = open_result_store(uri, config)
        store.load()
        store.append_chunk(first)
        # "Kill": drop the store object, reopen, resume from the load.
        store = open_result_store(uri, config)
        assert store.load() == {0: first[0][1], 1: None}
        store.append_chunk(second)
        assert snapshot(uri, resumed_dir) == expected


class TestCrossBackend:
    def test_all_backends_load_the_same_results(self, tmp_path, config):
        entries = [(0, make_evaluation()), (1, None), (2, make_evaluation(1))]
        loads = []
        for uri_for in URI_BUILDERS:
            uri = uri_for(tmp_path)
            store = open_result_store(uri, config)
            store.load()
            store.append_chunk(entries)
            loads.append(open_result_store(uri, config).load())
        assert loads[0] == loads[1] == loads[2]

    def test_checkpoint_migrates_across_backends(self, tmp_path, config):
        """A run started on one backend can be finished on another by
        replaying the loaded prefix -- the loads end up identical."""
        prefix = [(0, make_evaluation()), (1, None)]
        suffix = [(2, make_evaluation(1))]
        jsonl_store = open_result_store(jsonl_uri(tmp_path), config)
        jsonl_store.load()
        jsonl_store.append_chunk(prefix)

        migrated = open_result_store(sqlite_uri(tmp_path), config)
        migrated.load()
        migrated.append_chunk(sorted(jsonl_store.load().items()))
        migrated.append_chunk(suffix)

        jsonl_store.append_chunk(suffix)
        assert (
            open_result_store(sqlite_uri(tmp_path), config).load()
            == open_result_store(jsonl_uri(tmp_path), config).load()
        )


class TestSqliteBackend:
    def test_foreign_file_refused_and_left_intact(self, tmp_path, config):
        path = tmp_path / "ck.db"
        path.write_text("precious user notes")
        with pytest.raises(ConfigurationError, match="not a sweep"):
            open_result_store(f"sqlite:{path}", config).load()
        assert path.read_text() == "precious user notes"

    def test_unrelated_database_refused(self, tmp_path, config):
        path = tmp_path / "other.db"
        connection = sqlite3.connect(path)
        connection.execute("CREATE TABLE unrelated (x)")
        connection.commit()
        connection.close()
        with pytest.raises(ConfigurationError, match="not a sweep"):
            open_result_store(f"sqlite:{path}", config).load()


class TestShardedBackend:
    def test_multiple_writers_merge(self, tmp_path, config):
        base = f"shards:{tmp_path / 'ck.d'}"
        alpha = open_result_store(f"{base}?writer=alpha", config)
        beta = open_result_store(f"{base}?writer=beta", config)
        alpha.load()
        beta.load()
        alpha.append_chunk([(0, make_evaluation())])
        beta.append_chunk([(1, None), (2, make_evaluation(1))])
        merged = open_result_store(base, config).load()
        assert set(merged) == {0, 1, 2}
        # Each writer appended to its own shard file.
        names = {p.name for p in (tmp_path / "ck.d").glob("*.jsonl")}
        assert {"alpha.jsonl", "beta.jsonl", f"{DEFAULT_WRITER}.jsonl"} <= names

    def test_identical_duplicate_across_shards_is_merged(
        self, tmp_path, config
    ):
        """Two workers racing the same (pure) slot produce identical
        lines; the merge keeps one copy instead of failing."""
        base = f"shards:{tmp_path / 'ck.d'}"
        evaluation = make_evaluation()
        for writer in ("w1", "w2"):
            store = open_result_store(f"{base}?writer={writer}", config)
            store.load()
            store.append_chunk([(0, evaluation)])
        assert open_result_store(base, config).load() == {0: evaluation}

    def test_conflicting_records_across_shards_rejected(
        self, tmp_path, config
    ):
        base = f"shards:{tmp_path / 'ck.d'}"
        w1 = open_result_store(f"{base}?writer=w1", config)
        w2 = open_result_store(f"{base}?writer=w2", config)
        w1.load()
        w2.load()
        w1.append_chunk([(0, make_evaluation())])
        w2.append_chunk([(0, None)])
        with pytest.raises(ConfigurationError, match="conflicting records"):
            open_result_store(base, config).load()

    def test_torn_trailing_line_in_a_shard_is_truncated(
        self, tmp_path, config
    ):
        uri = shards_uri(tmp_path)
        store = open_result_store(uri, config)
        store.load()
        store.append_chunk([(0, make_evaluation())])
        shard = tmp_path / "ck.d" / f"{DEFAULT_WRITER}.jsonl"
        intact = shard.read_bytes()
        with shard.open("ab") as handle:
            handle.write(b'{"kind":"result","job":1,"eval')  # killed mid-write
        assert open_result_store(uri, config).load() == {0: make_evaluation()}
        assert shard.read_bytes() == intact

    def test_foreign_shard_rejects_the_whole_merge(self, tmp_path, config):
        """Silently skipping a foreign shard would resume from partial
        data, so one mismatched shard fails the whole load."""
        uri = shards_uri(tmp_path)
        open_result_store(uri, config).load()
        other = dataclasses.replace(config, seed=99)
        foreign_dir = tmp_path / "elsewhere"
        foreign = open_result_store(f"shards:{foreign_dir}", other)
        foreign.load()
        shard = foreign_dir / f"{DEFAULT_WRITER}.jsonl"
        (tmp_path / "ck.d" / "foreign.jsonl").write_bytes(shard.read_bytes())
        with pytest.raises(ConfigurationError, match="different sweep"):
            open_result_store(uri, config).load()

    def test_existing_file_at_directory_path_rejected(self, tmp_path, config):
        path = tmp_path / "ck.d"
        path.write_text("a file, not a directory")
        with pytest.raises(ConfigurationError, match="not a directory"):
            open_result_store(f"shards:{path}", config).load()

    def test_invalid_writer_name_rejected(self, tmp_path, config):
        with pytest.raises(ConfigurationError, match="writer name"):
            open_result_store(
                f"shards:{tmp_path / 'ck.d'}?writer=../escape", config
            )


class TestJsonlByteFormatUnchanged:
    def test_plain_path_still_writes_the_historical_format(
        self, tmp_path, config
    ):
        """open_result_store on a plain path must produce the exact bytes
        JsonlResultStore always produced."""
        evaluation = make_evaluation()
        via_uri = tmp_path / "via_uri.jsonl"
        store = open_result_store(str(via_uri), config)
        store.load()
        store.append_chunk([(0, evaluation), (1, None)])

        direct = tmp_path / "direct.jsonl"
        legacy = JsonlResultStore(direct, config)
        legacy.load()
        legacy.append_chunk([(0, evaluation), (1, None)])

        assert via_uri.read_bytes() == direct.read_bytes()
        header = json.loads(via_uri.read_text().splitlines()[0])
        assert header["kind"] == "header"
        assert "config" in header


class TestOrchestratorUris:
    """Both orchestrators accept backend URIs through ``checkpoint_path``."""

    @pytest.mark.parametrize("scheme", ["sqlite", "shards"])
    def test_sweep_runs_and_resumes_on_alternate_backends(
        self, tmp_path, scheme
    ):
        from repro.batch.orchestrator import run_batch_sweep

        target = tmp_path / ("ck.db" if scheme == "sqlite" else "ck.d")
        config = ExperimentConfig(
            num_cores=2,
            tasksets_per_group=2,
            utilization_groups=((0.05, 0.2),),
            seed=31337,
            chunk_size=1,
            checkpoint_path=f"{scheme}:{target}",
        )
        first = run_batch_sweep(config)
        assert target.exists()
        # A rerun of the same command is a pure resume: every slot comes
        # from the checkpoint and the results are identical.
        events = []
        again = run_batch_sweep(config, progress=events.append)
        assert events == []
        assert tuple(again.evaluations) == tuple(first.evaluations)

    def test_campaign_runs_and_resumes_on_sqlite(self, tmp_path):
        from repro.campaign import CampaignSpec, run_campaign

        spec = CampaignSpec(
            schemes=("HYDRA-C",),
            num_trials=2,
            horizon=5_000,
            seed=5,
            chunk_size=1,
            checkpoint_path=f"sqlite:{tmp_path / 'camp.db'}",
        )
        first = run_campaign(spec)
        events = []
        again = run_campaign(spec, progress=events.append)
        assert events == []
        assert again == first


def strip_header_fields(uri, directory, *fields):
    """Rewrite a store's header without *fields* inside its fingerprint,
    simulating a checkpoint written before those axes existed."""

    def strip(text):
        header = json.loads(text)
        for field_name in ("config", "campaign"):
            fingerprint = header.get(field_name)
            if isinstance(fingerprint, dict):
                header[field_name] = {
                    key: value
                    for key, value in fingerprint.items()
                    if key not in fields
                }
        return json.dumps(header)

    if uri.startswith("sqlite:"):
        connection = sqlite3.connect(uri[len("sqlite:") :])
        try:
            (record,) = connection.execute(
                "SELECT record FROM meta WHERE field='header'"
            ).fetchone()
            connection.execute(
                "UPDATE meta SET record=? WHERE field='header'", (strip(record),)
            )
            connection.commit()
        finally:
            connection.close()
        return
    if uri.startswith("shards:"):
        paths = list((directory / "ck.d").glob("*.jsonl"))
    else:
        paths = [directory / "ck.jsonl"]
    for path in paths:
        lines = path.read_text(encoding="utf-8").splitlines()
        lines[0] = strip(lines[0])
        path.write_text("".join(line + "\n" for line in lines), encoding="utf-8")


@pytest.mark.parametrize("uri_for", URI_BUILDERS, ids=URI_IDS)
class TestPlatformFingerprint:
    """Checkpoints are platform-bound: the scheduler / protocol / overheads
    axes are fingerprint-relevant (unlike the backend), and headers from
    before the platform layer normalise to the default platform."""

    PLATFORM_AXES = ("scheduler", "protocol", "overheads")

    def test_sweep_resume_under_a_different_platform_rejected(
        self, tmp_path, config, uri_for
    ):
        uri = uri_for(tmp_path)
        store = open_result_store(uri, config)
        store.load()
        store.append_chunk([(0, make_evaluation())])
        for other in (
            dataclasses.replace(config, scheduler="edf"),
            dataclasses.replace(config, protocol="pip"),
            dataclasses.replace(config, overheads="const:5"),
        ):
            with pytest.raises(ConfigurationError, match="different sweep"):
                open_result_store(uri, other).load()

    def test_campaign_resume_under_a_different_platform_rejected(
        self, tmp_path, uri_for
    ):
        from repro.campaign import CampaignSpec

        spec = CampaignSpec(schemes=("HYDRA-C",), num_trials=2, horizon=5_000)
        uri = uri_for(tmp_path)
        open_campaign_store(uri, spec).load()
        for other in (
            dataclasses.replace(spec, scheduler="edf"),
            dataclasses.replace(spec, protocol="pcp"),
            dataclasses.replace(spec, overheads="const:2,3"),
        ):
            with pytest.raises(ConfigurationError, match="different campaign"):
                open_campaign_store(uri, other).load()

    def test_equivalent_overhead_spellings_resume(self, tmp_path, config, uri_for):
        """``const:5`` and ``const:5,0`` are the same model and must share
        a fingerprint."""
        uri = uri_for(tmp_path)
        first = dataclasses.replace(config, overheads="const:5")
        store = open_result_store(uri, first)
        store.load()
        store.append_chunk([(0, make_evaluation())])
        respelled = dataclasses.replace(config, overheads="const:5,0")
        assert open_result_store(uri, respelled).load() == {0: make_evaluation()}

    def test_legacy_sweep_header_normalises_to_the_default_platform(
        self, tmp_path, config, uri_for
    ):
        """A pre-platform checkpoint (no scheduler/protocol/overheads keys)
        was always simulated under the paper's platform: it must resume
        under the defaults and stay rejected under anything else."""
        uri = uri_for(tmp_path)
        store = open_result_store(uri, config)
        store.load()
        store.append_chunk([(0, make_evaluation())])
        strip_header_fields(uri, tmp_path, *self.PLATFORM_AXES)
        assert open_result_store(uri, config).load() == {0: make_evaluation()}
        pip = dataclasses.replace(config, protocol="pip")
        with pytest.raises(ConfigurationError, match="different sweep"):
            open_result_store(uri, pip).load()

    def test_legacy_campaign_header_normalises_to_the_default_platform(
        self, tmp_path, uri_for
    ):
        from repro.campaign import CampaignSpec

        spec = CampaignSpec(schemes=("HYDRA-C",), num_trials=2, horizon=5_000)
        uri = uri_for(tmp_path)
        open_campaign_store(uri, spec).load()
        strip_header_fields(uri, tmp_path, *self.PLATFORM_AXES)
        assert open_campaign_store(uri, spec).load() == {}
        edf = dataclasses.replace(spec, scheduler="edf")
        with pytest.raises(ConfigurationError, match="different campaign"):
            open_campaign_store(uri, edf).load()


class TestCampaignStoreUris:
    def test_campaign_codec_rides_any_backend(self, tmp_path):
        from repro.campaign import (
            CampaignSpec,
            SchemeTrialOutcome,
            TrialRecord,
        )

        spec = CampaignSpec(
            schemes=("HYDRA-C",), num_trials=4, horizon=5_000, seed=5
        )
        record = TrialRecord(
            trial_index=0,
            seed=1000,
            outcomes={
                "HYDRA-C": SchemeTrialOutcome(
                    latencies=(10, None),
                    context_switches=5,
                    migrations=1,
                    preemptions=0,
                )
            },
        )
        for uri in (
            str(tmp_path / "camp.jsonl"),
            f"sqlite:{tmp_path / 'camp.db'}",
            f"shards:{tmp_path / 'camp.d'}",
        ):
            store = open_campaign_store(uri, spec)
            assert store.load() == {}
            store.append_chunk([record])
            assert open_campaign_store(uri, spec).load() == {0: record}
        with pytest.raises(ConfigurationError, match="different campaign"):
            other = dataclasses.replace(spec, seed=6)
            open_campaign_store(f"sqlite:{tmp_path / 'camp.db'}", other).load()
