"""Unit tests for the scheme registry and its derived single sources of truth."""

import pytest

from repro.batch.results import SCHEME_NAMES
from repro.batch.service import BatchDesignService
from repro.core.framework import SchedulingPolicy
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.model.platform import Platform
from repro.schemes import (
    REGISTRY,
    Phase,
    SchemePlugin,
    SchemeRegistry,
    SchemeSpec,
)

CANONICAL = ("HYDRA-C", "HYDRA", "GLOBAL-TMax", "HYDRA-TMax")


def _spec(name="TEST-SCHEME", **overrides):
    defaults = dict(
        name=name,
        factory=lambda platform: SchemePlugin(),
        policy=SchedulingPolicy.PARTITIONED,
        adapts_periods=True,
        phases=frozenset(),
    )
    defaults.update(overrides)
    return SchemeSpec(**defaults)


class TestGlobalRegistry:
    def test_canonical_names_are_the_papers_four_in_legend_order(self):
        assert REGISTRY.canonical_names() == CANONICAL

    def test_scheme_names_constant_derives_from_the_registry(self):
        assert SCHEME_NAMES == REGISTRY.canonical_names()

    def test_variants_are_registered(self):
        for name in ("HYDRA-C-FF", "HYDRA-C-WF", "HYDRA-C-GC", "HYDRA-RF"):
            assert name in REGISTRY
            assert not REGISTRY.get(name).canonical

    def test_every_spec_carries_consistent_metadata(self):
        for spec in REGISTRY:
            assert isinstance(spec.policy, SchedulingPolicy)
            assert isinstance(spec.adapts_periods, bool)
            for phase in spec.phases:
                assert isinstance(phase, Phase)

    def test_create_builds_a_plugin_per_platform(self):
        plugin = REGISTRY.create("HYDRA-C", Platform.dual_core())
        assert hasattr(plugin, "design")


class TestRegistryBehaviour:
    def test_registration_order_is_preserved(self):
        registry = SchemeRegistry()
        for name in ("B", "A", "C"):
            registry.register(_spec(name))
        assert registry.names() == ("B", "A", "C")

    def test_duplicate_name_rejected(self):
        registry = SchemeRegistry()
        registry.register(_spec())
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register(_spec())

    def test_unknown_lookup_is_a_clean_one_line_error(self):
        registry = SchemeRegistry()
        registry.register(_spec("ONLY"))
        with pytest.raises(ConfigurationError) as excinfo:
            registry.get("NOPE")
        message = str(excinfo.value)
        assert "NOPE" in message and "ONLY" in message
        assert "\n" not in message

    def test_resolve_defaults_to_canonical(self):
        specs = REGISTRY.resolve(None)
        assert tuple(spec.name for spec in specs) == CANONICAL

    def test_resolve_preserves_selection_order(self):
        specs = REGISTRY.resolve(("GLOBAL-TMax", "HYDRA-C"))
        assert tuple(spec.name for spec in specs) == ("GLOBAL-TMax", "HYDRA-C")

    def test_resolve_rejects_duplicates_and_empty_selection(self):
        with pytest.raises(ConfigurationError, match="more than once"):
            REGISTRY.resolve(("HYDRA", "HYDRA"))
        with pytest.raises(ConfigurationError, match="empty"):
            REGISTRY.resolve(())

    def test_resolve_rejects_a_bare_string(self):
        """A string is a Sequence[str]; without a guard it would iterate
        character by character into "unknown scheme 'H'"."""
        with pytest.raises(ConfigurationError, match="sequence of names"):
            REGISTRY.resolve("HYDRA-C")
        with pytest.raises(ConfigurationError, match="sequence of names"):
            ExperimentConfig(schemes="HYDRA-C")

    def test_phase_prerequisites_enforced_at_spec_construction(self):
        with pytest.raises(ConfigurationError, match="prerequisite"):
            _spec(phases=frozenset({Phase.MAXPERIOD_SECURITY_ALLOCATION}))
        with pytest.raises(ConfigurationError, match="prerequisite"):
            _spec(phases=frozenset({Phase.EQ1_RT_CHECK}))

    def test_blank_name_rejected(self):
        with pytest.raises(ConfigurationError):
            _spec("")
        with pytest.raises(ConfigurationError):
            _spec(" padded ")

    def test_name_with_cli_separator_rejected(self):
        """',' is the --schemes separator; such a name could never be
        selected from the command line."""
        with pytest.raises(ConfigurationError, match="','"):
            _spec("MY,SCHEME")


class TestDerivedConsumers:
    def test_service_scheme_names_follow_selection_order(self):
        service = BatchDesignService(
            2, scheme_names=("HYDRA-RF", "GLOBAL-TMax")
        )
        assert service.scheme_names == ("HYDRA-RF", "GLOBAL-TMax")

    def test_service_rejects_unknown_scheme(self):
        with pytest.raises(ConfigurationError, match="NOT-A-SCHEME"):
            BatchDesignService(2, scheme_names=("HYDRA-C", "NOT-A-SCHEME"))

    def test_experiment_config_normalises_and_validates_schemes(self):
        config = ExperimentConfig(schemes=["HYDRA-C", "HYDRA-RF"])
        assert config.schemes == ("HYDRA-C", "HYDRA-RF")
        default = ExperimentConfig()
        assert default.schemes == CANONICAL
        with pytest.raises(ConfigurationError, match="NOT-A-SCHEME"):
            ExperimentConfig(schemes=("NOT-A-SCHEME",))
