"""Every registered scheme must flow end-to-end.

The registry's contract is that a registered scheme needs no other wiring:
the batch service evaluates it, its :class:`SystemDesign` simulates without
RT deadline misses, and the security evaluation accepts the resulting
trace.  These tests parametrise over *every* registered scheme -- a newly
registered plugin is automatically held to the same bar.
"""

import numpy as np
import pytest

from repro.batch.service import BatchDesignService
from repro.errors import AllocationError
from repro.generation import TasksetGenerationConfig, TasksetGenerator
from repro.model import Platform
from repro.partitioning import partition_rt_tasks
from repro.schemes import REGISTRY
from repro.security.attacks import generate_attacks
from repro.security.detection import evaluate_detection
from repro.security.monitors import SecurityMonitor
from repro.sim.engine import simulate_design

HORIZON = 2_000

#: Small-period generator so hyperperiod-scale simulation stays cheap.
GENERATION_CONFIG = TasksetGenerationConfig(
    num_cores=2,
    rt_tasks_per_core=(2, 4),
    security_tasks_per_core=(1, 2),
    rt_period_range=(10, 100),
    security_max_period_range=(150, 300),
)


def _tasksets(seeds, utilization=0.5):
    platform = Platform(num_cores=2)
    for seed in seeds:
        generator = TasksetGenerator(GENERATION_CONFIG, seed=seed)
        taskset = generator.generate(utilization * 2)
        try:
            allocation = partition_rt_tasks(taskset, platform)
        except AllocationError:
            continue
        yield taskset, allocation


@pytest.mark.parametrize("scheme_name", REGISTRY.names())
def test_scheme_designs_simulate_and_evaluate(scheme_name):
    spec = REGISTRY.get(scheme_name)
    service = BatchDesignService(2, scheme_names=(scheme_name,))
    simulated = 0
    for taskset, allocation in _tasksets(seeds=range(8)):
        design = service.design_all(taskset, allocation)[scheme_name]
        if design is None or not design.schedulable:
            continue
        # The design must be labelled and typed per its registration.
        assert design.scheme == scheme_name
        assert design.policy == spec.policy
        periods = design.security_periods()
        maxima = design.taskset.security_max_period_vector()
        for name, period in periods.items():
            assert period is not None
            assert 0 < period <= maxima[name]
        if not spec.adapts_periods:
            assert periods == maxima

        # Simulation: raises SimulationError on any RT deadline miss.
        trace = simulate_design(design, horizon=HORIZON)
        simulated += 1

        # Security evaluation accepts the trace end-to-end.
        monitors = [
            SecurityMonitor.for_task(task)
            for task in design.taskset.security_tasks
        ]
        scenario = generate_attacks(
            monitors, HORIZON, rng=np.random.default_rng(7)
        )
        results = evaluate_detection(trace, monitors, scenario)
        assert len(results) == len(monitors)
    assert simulated > 0, f"no schedulable design produced for {scheme_name}"


def test_evaluation_records_cover_exactly_the_selected_schemes():
    selection = ("HYDRA-C", "HYDRA-RF", "HYDRA-C-GC")
    service = BatchDesignService(2, scheme_names=selection)
    for taskset, allocation in _tasksets(seeds=range(3)):
        evaluation = service.evaluate_taskset(taskset, allocation)
        assert tuple(evaluation.schedulable) == selection
        assert tuple(evaluation.periods) == selection


def test_greedy_carry_in_variant_is_never_optimistic():
    """HYDRA-C-GC uses a pessimistic-but-sound bound: it must never accept
    a task set canonical HYDRA-C (exact-leaning AUTO strategy) rejects."""
    service = BatchDesignService(2, scheme_names=("HYDRA-C", "HYDRA-C-GC"))
    checked = 0
    for taskset, allocation in _tasksets(seeds=range(8), utilization=0.65):
        designs = service.design_all(taskset, allocation)
        exact = designs["HYDRA-C"]
        greedy = designs["HYDRA-C-GC"]
        if greedy is not None and greedy.schedulable:
            assert exact is not None and exact.schedulable
        checked += 1
    assert checked > 0


def test_random_fit_pick_varies_per_taskset():
    """Security tasks are named identically (sec0, sec1, ...) in every
    generated task set; the pick must still vary across task sets or the
    'random fit' degenerates to one fixed allocation rule per task index."""
    from repro.schemes.variants import RandomFitHydra

    salts = {
        RandomFitHydra._taskset_salt(taskset)
        for taskset, _allocation in _tasksets(seeds=range(4))
    }
    assert len(salts) > 1


def test_random_fit_rejects_the_greedy_period_policy():
    """The override assumes max-period occupancy, which contradicts the
    literal-greedy policy's contract -- constructing that combination must
    fail loudly instead of silently mis-allocating."""
    from repro.baselines.hydra import PeriodPolicy
    from repro.errors import ConfigurationError
    from repro.schemes.variants import RandomFitHydra

    with pytest.raises(ConfigurationError, match="GREEDY_MIN"):
        RandomFitHydra(
            Platform.dual_core(), period_policy=PeriodPolicy.GREEDY_MIN
        )


def test_random_fit_allocation_is_deterministic():
    service = BatchDesignService(2, scheme_names=("HYDRA-RF",))
    taskset, allocation = next(_tasksets(seeds=range(8)))
    first = service.design_all(taskset, allocation)["HYDRA-RF"]
    second = service.design_all(taskset, allocation)["HYDRA-RF"]
    assert first.security_allocation == second.security_allocation
    assert first.security_periods() == second.security_periods()
