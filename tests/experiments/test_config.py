"""Unit tests for experiment configuration (Table 3 encoding)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import TABLE3_PARAMETERS, UTILIZATION_GROUPS, ExperimentConfig


class TestTable3:
    def test_parameters_match_paper(self):
        assert TABLE3_PARAMETERS["process_cores"] == (2, 4)
        assert TABLE3_PARAMETERS["num_rt_tasks_range_per_core"] == (3, 10)
        assert TABLE3_PARAMETERS["num_security_tasks_range_per_core"] == (2, 5)
        assert TABLE3_PARAMETERS["rt_task_period_ms"] == (10, 1000)
        assert TABLE3_PARAMETERS["security_max_period_ms"] == (1500, 3000)
        assert TABLE3_PARAMETERS["base_utilization_groups"] == 10
        assert TABLE3_PARAMETERS["tasksets_per_group"] == 250

    def test_ten_utilization_groups(self):
        assert len(UTILIZATION_GROUPS) == 10
        assert UTILIZATION_GROUPS[0] == pytest.approx((0.01, 0.1))
        assert UTILIZATION_GROUPS[-1] == pytest.approx((0.91, 1.0))


class TestExperimentConfig:
    def test_defaults(self):
        config = ExperimentConfig()
        assert config.num_cores == 2
        assert len(config.utilization_groups) == 10
        assert config.generation_config().num_cores == 2

    def test_group_labels(self):
        labels = ExperimentConfig().group_labels()
        assert len(labels) == 10
        assert labels[2] == "[0.2,0.3]"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(num_cores=0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(tasksets_per_group=0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(n_jobs=0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(utilization_groups=[(0.0, 0.5)])
        with pytest.raises(ConfigurationError):
            ExperimentConfig(chunk_size=0)

    def test_checkpoint_knobs_default_off(self):
        config = ExperimentConfig()
        assert config.checkpoint_path is None
        assert config.chunk_size == 25

    def test_checkpoint_knobs_accepted(self):
        config = ExperimentConfig(chunk_size=3, checkpoint_path="sweep.jsonl")
        assert config.chunk_size == 3
        assert config.checkpoint_path == "sweep.jsonl"

    def test_search_mode_defaults_to_binary(self):
        assert ExperimentConfig().search_mode == "binary"

    def test_search_mode_accepts_enum_and_string(self):
        from repro.core.period_selection import SearchMode

        assert ExperimentConfig(search_mode="linear").search_mode == "linear"
        assert (
            ExperimentConfig(search_mode=SearchMode.LINEAR).search_mode
            == "linear"
        )

    def test_unknown_search_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="search mode"):
            ExperimentConfig(search_mode="quadratic")
