"""Determinism guarantees of the batched sweep.

The sweep promises that *how* work is executed never changes *what* is
computed: worker count, chunking and checkpoint interruptions are pure
execution details.  These tests pin that contract:

* ``n_jobs=1`` and ``n_jobs=4`` produce identical evaluation streams
  (identical order too -- the orchestrator preserves job order, so the
  order-normalized comparison the contract requires is subsumed);
* a sweep killed after its first checkpointed chunk and resumed reproduces
  the uninterrupted run exactly, including the checkpoint file bytes.
"""

import dataclasses

import pytest

from repro.batch.store import JsonlResultStore
from repro.experiments.config import ExperimentConfig
from repro.experiments.sweep import run_sweep


@pytest.fixture(scope="module")
def determinism_config():
    return ExperimentConfig(
        num_cores=2,
        tasksets_per_group=2,
        utilization_groups=((0.05, 0.2), (0.4, 0.55), (0.7, 0.85)),
        seed=60601,
        chunk_size=2,
        n_jobs=1,
    )


@pytest.fixture(scope="module")
def serial_result(determinism_config):
    return run_sweep(determinism_config)


class TestWorkerCountIndependence:
    def test_parallel_sweep_equals_serial_sweep(
        self, determinism_config, serial_result
    ):
        parallel_config = dataclasses.replace(determinism_config, n_jobs=4)
        parallel = run_sweep(parallel_config)
        assert tuple(parallel.evaluations) == tuple(serial_result.evaluations)

    def test_chunk_size_does_not_change_results(
        self, determinism_config, serial_result
    ):
        rechunked = dataclasses.replace(determinism_config, chunk_size=5)
        assert tuple(run_sweep(rechunked).evaluations) == tuple(
            serial_result.evaluations
        )


class TestKernelTierIndependence:
    """PR 7: the fixed-point kernel tier is an execution detail too --
    ``compiled`` and ``auto`` (whether the backend built or fell back to
    python) must reproduce the python tier's evaluation stream exactly."""

    @pytest.mark.parametrize("kernel", ["compiled", "auto"])
    def test_kernel_tier_does_not_change_results(
        self, determinism_config, serial_result, kernel
    ):
        import warnings

        retiered = dataclasses.replace(determinism_config, kernel=kernel)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            result = run_sweep(retiered)
        assert tuple(result.evaluations) == tuple(serial_result.evaluations)


class TestCheckpointResume:
    def test_killed_then_resumed_equals_uninterrupted(
        self, determinism_config, serial_result, tmp_path
    ):
        uninterrupted_path = tmp_path / "uninterrupted.jsonl"
        interrupted_path = tmp_path / "interrupted.jsonl"

        uninterrupted = run_sweep(
            determinism_config,
            store=JsonlResultStore(uninterrupted_path, determinism_config),
        )
        assert tuple(uninterrupted.evaluations) == tuple(
            serial_result.evaluations
        )

        # Simulate a kill after the first flushed chunk: run to completion,
        # then chop the checkpoint back to header + one chunk.
        run_sweep(
            determinism_config,
            store=JsonlResultStore(interrupted_path, determinism_config),
        )
        lines = interrupted_path.read_bytes().splitlines(keepends=True)
        kept = 1 + determinism_config.chunk_size
        assert len(lines) > kept
        interrupted_path.write_bytes(b"".join(lines[:kept]))

        resumed = run_sweep(
            determinism_config,
            store=JsonlResultStore(interrupted_path, determinism_config),
        )
        assert tuple(resumed.evaluations) == tuple(uninterrupted.evaluations)
        assert (
            interrupted_path.read_bytes() == uninterrupted_path.read_bytes()
        )

    def test_kill_mid_write_is_recovered(
        self, determinism_config, serial_result, tmp_path
    ):
        """A torn final line (process died inside ``write``) must not poison
        the resume: the store trims it and the slot is re-evaluated."""
        path = tmp_path / "torn.jsonl"
        run_sweep(
            determinism_config, store=JsonlResultStore(path, determinism_config)
        )
        complete = path.read_bytes()
        lines = complete.splitlines(keepends=True)
        torn = b"".join(lines[:3]) + lines[3][: len(lines[3]) // 2]
        path.write_bytes(torn)

        resumed = run_sweep(
            determinism_config, store=JsonlResultStore(path, determinism_config)
        )
        assert tuple(resumed.evaluations) == tuple(serial_result.evaluations)
        assert path.read_bytes() == complete
