"""Golden regression pins for the synthetic figure vectors.

The expected values are the small-config (2 cores, 5 task sets per group)
tables recorded in ``benchmarks/figures_output.txt`` by the seed revision's
benchmark run, with tolerance bands matching that file's print precision
(3 decimals for distances, 0.1 percentage points for acceptance).  The
sweep is deterministic, so any drift beyond the print precision means the
analysis, the generator or the scheme implementations changed behaviour --
exactly what this suite is meant to catch.

Marked ``slow``: each pin runs a full (small) sweep.
"""

import math

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.fig6_period_distance import compute_fig6
from repro.experiments.fig7a_acceptance import compute_fig7a
from repro.experiments.sweep import run_sweep

pytestmark = pytest.mark.slow

#: benchmarks/figures_output.txt, "Fig. 6 -- ... (2 cores, 5 tasksets/group)"
#: (bench seed 2020 + 2 cores).
GOLDEN_FIG6_MEAN_DISTANCE = [
    0.943, 0.791, 0.660, 0.499, 0.475, 0.385, 0.413, 0.382, 0.179, 0.095,
]
GOLDEN_FIG6_SCHEDULABLE = [5, 5, 5, 5, 5, 5, 5, 5, 3, 1]

#: benchmarks/figures_output.txt, "Fig. 7a -- ... (2 cores, 5 tasksets/group)"
#: (bench seed 4040 + 2 cores).
GOLDEN_FIG7A_ACCEPTANCE = {
    "HYDRA-C": [1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 0.4, 0.0],
    "HYDRA": [1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 0.0],
    "GLOBAL-TMax": [1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 0.0, 0.0],
    "HYDRA-TMax": [1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 0.0],
}

DISTANCE_TOLERANCE = 0.0005  # figures_output.txt prints 3 decimals
ACCEPTANCE_TOLERANCE = 0.0005  # printed as percentages with 1 decimal


def test_fig6_mean_distance_matches_golden_vector():
    config = ExperimentConfig(num_cores=2, tasksets_per_group=5, seed=2022)
    result = compute_fig6(run_sweep(config))
    assert result.samples_per_group == GOLDEN_FIG6_SCHEDULABLE
    for observed, expected in zip(
        result.mean_distance, GOLDEN_FIG6_MEAN_DISTANCE
    ):
        assert not math.isnan(observed)
        assert observed == pytest.approx(expected, abs=DISTANCE_TOLERANCE)


def test_fig7a_acceptance_matches_golden_vectors():
    config = ExperimentConfig(num_cores=2, tasksets_per_group=5, seed=4042)
    result = compute_fig7a(run_sweep(config))
    assert set(result.acceptance) == set(GOLDEN_FIG7A_ACCEPTANCE)
    for scheme, golden in GOLDEN_FIG7A_ACCEPTANCE.items():
        for observed, expected in zip(result.acceptance[scheme], golden):
            assert observed == pytest.approx(
                expected, abs=ACCEPTANCE_TOLERANCE
            ), f"{scheme} acceptance drifted from the golden vector"
