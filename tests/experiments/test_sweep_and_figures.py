"""Integration tests for the design-space sweep and figure computations.

These use a deliberately tiny sweep (few task sets per group, few groups) so
the whole module runs in seconds while still exercising the full path:
generation -> partitioning -> all four schemes -> metrics -> tables.
"""

import math

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.fig6_period_distance import compute_fig6, format_fig6
from repro.experiments.fig7a_acceptance import compute_fig7a, format_fig7a
from repro.experiments.fig7b_period_diff import compute_fig7b, format_fig7b
from repro.experiments.sweep import SCHEME_NAMES, run_sweep


@pytest.fixture(scope="module")
def small_sweep():
    config = ExperimentConfig(
        num_cores=2,
        tasksets_per_group=3,
        utilization_groups=((0.05, 0.15), (0.35, 0.45), (0.65, 0.75)),
        seed=123,
        n_jobs=1,
    )
    return run_sweep(config)


class TestSweep:
    def test_every_slot_evaluated(self, small_sweep):
        assert len(small_sweep.evaluations) == 9

    def test_every_scheme_reported(self, small_sweep):
        for evaluation in small_sweep.evaluations:
            assert set(evaluation.schedulable) == set(SCHEME_NAMES)
            assert set(evaluation.periods) == set(SCHEME_NAMES)

    def test_accepted_schemes_provide_periods_within_bounds(self, small_sweep):
        for evaluation in small_sweep.evaluations:
            for scheme in SCHEME_NAMES:
                if not evaluation.accepted(scheme):
                    assert evaluation.periods[scheme] is None
                    continue
                periods = evaluation.periods[scheme]
                assert periods is not None
                for task, period in periods.items():
                    assert 0 < period <= evaluation.max_periods[task]

    def test_low_utilization_group_fully_accepted(self, small_sweep):
        by_group = small_sweep.by_group()
        assert all(e.accepted("HYDRA-C") for e in by_group[0])

    def test_acceptance_by_group_shape(self, small_sweep):
        ratios = small_sweep.acceptance_by_group("HYDRA-C")
        assert len(ratios) == 3
        assert all(0.0 <= r <= 1.0 for r in ratios)


class TestSchemeSelection:
    """A registered variant selection flows through sweep and figures."""

    VARIANT_SCHEMES = ("HYDRA-C", "HYDRA-RF", "HYDRA-C-GC")

    @pytest.fixture(scope="class")
    def variant_sweep(self):
        config = ExperimentConfig(
            num_cores=2,
            tasksets_per_group=1,
            utilization_groups=((0.05, 0.15), (0.35, 0.45), (0.65, 0.75)),
            seed=123,
            schemes=self.VARIANT_SCHEMES,
        )
        return run_sweep(config)

    def test_columns_match_the_selection_in_order(self, variant_sweep):
        for evaluation in variant_sweep.evaluations:
            assert tuple(evaluation.schedulable) == self.VARIANT_SCHEMES
            assert tuple(evaluation.periods) == self.VARIANT_SCHEMES

    def test_fig7a_curves_derive_from_the_selection(self, variant_sweep):
        result = compute_fig7a(variant_sweep)
        assert tuple(result.acceptance) == self.VARIANT_SCHEMES
        text = format_fig7a(result)
        assert "HYDRA-RF" in text and "HYDRA-C-GC" in text

    def test_hydra_c_relative_figures_reject_missing_schemes(
        self, variant_sweep
    ):
        """compute_fig6/7b dereference HYDRA-C (and HYDRA); a sweep without
        them must raise instead of rendering all-NaN tables."""
        from repro.errors import ConfigurationError

        # The variant sweep has HYDRA-C but no HYDRA -> fig6 ok, fig7b not.
        compute_fig6(variant_sweep)
        with pytest.raises(ConfigurationError, match="HYDRA"):
            compute_fig7b(variant_sweep)

    def test_parallel_variant_sweep_is_deterministic(self, variant_sweep):
        import dataclasses

        parallel = run_sweep(
            dataclasses.replace(variant_sweep.config, n_jobs=2)
        )
        assert tuple(parallel.evaluations) == tuple(variant_sweep.evaluations)


class TestFigureComputations:
    def test_fig6_distances_bounded_and_decreasing_overall(self, small_sweep):
        result = compute_fig6(small_sweep)
        valid = [d for d in result.mean_distance if not math.isnan(d)]
        assert all(0.0 <= d < 1.0 for d in valid)
        # Low-utilization group achieves more adaptation than the highest one.
        assert result.mean_distance[0] >= valid[-1]
        assert "Fig. 6" in format_fig6(result)

    def test_fig7a_table(self, small_sweep):
        result = compute_fig7a(small_sweep)
        assert set(result.acceptance) == set(SCHEME_NAMES)
        assert all(len(v) == 3 for v in result.acceptance.values())
        text = format_fig7a(result)
        assert "HYDRA-C" in text and "%" in text

    def test_fig7b_gain_vs_no_adaptation_positive(self, small_sweep):
        result = compute_fig7b(small_sweep)
        valid = [g for g in result.gain_vs_no_adaptation if not math.isnan(g)]
        assert valid and all(g >= 0.0 for g in valid)
        assert "Fig. 7b" in format_fig7b(result)
