"""Unit tests for the HYDRA and HYDRA-TMax baselines."""

import pytest

from repro.baselines.hydra import Hydra, PeriodPolicy, best_core_for_security_task
from repro.baselines.hydra_tmax import HydraTMax
from repro.core.framework import SchedulingPolicy
from repro.errors import UnschedulableError
from repro.model import Platform, RealTimeTask, SecurityTask, TaskSet
from repro.schedulability.uniprocessor import UniprocessorTask, uniprocessor_response_time


class TestBestCoreSelection:
    def test_prefers_fullest_feasible_core(self):
        task = SecurityTask(name="ids", wcet=5, max_period=500, priority=10)
        rt_by_core = {
            0: [RealTimeTask(name="light", wcet=1, period=10, priority=0)],
            1: [RealTimeTask(name="heavy", wcet=5, period=10, priority=1)],
        }
        choice = best_core_for_security_task(task, rt_by_core, {0: [], 1: []}, 2)
        assert choice is not None
        core, response = choice
        assert core == 1  # fullest feasible core (best-fit)
        assert response > 5

    def test_infeasible_core_skipped(self):
        task = SecurityTask(name="ids", wcet=50, max_period=100, priority=10)
        rt_by_core = {
            0: [RealTimeTask(name="hog", wcet=9, period=10, priority=0)],
            1: [RealTimeTask(name="light", wcet=1, period=10, priority=1)],
        }
        choice = best_core_for_security_task(task, rt_by_core, {0: [], 1: []}, 2)
        assert choice is not None
        assert choice[0] == 1

    def test_none_when_no_core_feasible(self):
        task = SecurityTask(name="ids", wcet=90, max_period=100, priority=10)
        rt_by_core = {
            0: [RealTimeTask(name="a", wcet=5, period=10, priority=0)],
            1: [RealTimeTask(name="b", wcet=5, period=10, priority=1)],
        }
        assert best_core_for_security_task(task, rt_by_core, {0: [], 1: []}, 2) is None


class TestHydraRover:
    def test_rover_allocation_and_periods(self, rover, rover_allocation, dual_core):
        design = Hydra(dual_core).design(rover, rover_allocation)
        assert design.schedulable
        assert design.policy is SchedulingPolicy.PARTITIONED
        # Both security tasks end up on the camera core (the fullest feasible
        # core for each of them), mirroring the best-fit packing.
        assert design.security_allocation.as_dict() == {
            "tripwire": 1,
            "kmod-checker": 1,
        }
        periods = design.security_periods()
        assert periods["tripwire"] <= 10_000
        assert periods["kmod-checker"] <= 10_000
        # HYDRA-C achieves a shorter (or equal) period for the lower-priority
        # monitor than fully partitioned HYDRA on the rover workload.
        assert periods["kmod-checker"] >= 2783

    def test_periods_respect_uniprocessor_schedulability(self, rover, rover_allocation, dual_core):
        design = Hydra(dual_core).design(rover, rover_allocation)
        periods = design.security_periods()
        camera = UniprocessorTask("camera", wcet=1120, period=5000)
        tripwire = UniprocessorTask("tripwire", wcet=5342, period=periods["tripwire"])
        response = uniprocessor_response_time(
            223, [camera, tripwire], limit=10_000
        )
        assert response is not None and response <= periods["kmod-checker"]


class TestHydraGeneral:
    def test_unschedulable_when_no_core_fits(self, dual_core):
        taskset = TaskSet.create(
            [RealTimeTask(name="a", wcet=8, period=10), RealTimeTask(name="b", wcet=8, period=10)],
            [SecurityTask(name="ids", wcet=90, max_period=120)],
        )
        design = Hydra(dual_core).design(taskset, {"a": 0, "b": 1})
        assert not design.schedulable
        assert design.metadata["unschedulable_task"] == "ids"

    def test_broken_rt_partition_raises(self, dual_core):
        taskset = TaskSet.create(
            [RealTimeTask(name="a", wcet=9, period=10), RealTimeTask(name="b", wcet=9, period=10)],
            [],
        )
        with pytest.raises(UnschedulableError):
            Hydra(dual_core).design(taskset, {"a": 0, "b": 0})

    def test_greedy_min_policy_assigns_response_time_as_period(self, dual_core):
        taskset = TaskSet.create(
            [RealTimeTask(name="rt", wcet=2, period=10)],
            [SecurityTask(name="ids", wcet=4, max_period=200)],
        )
        design = Hydra(dual_core, period_policy=PeriodPolicy.GREEDY_MIN).design(
            taskset, {"rt": 0}
        )
        assert design.schedulable
        periods = design.security_periods()
        assert periods["ids"] == design.response_times["ids"]

    def test_core_aware_policy_keeps_lower_priority_schedulable(self, dual_core):
        taskset = TaskSet.create(
            [RealTimeTask(name="a", wcet=5, period=10), RealTimeTask(name="b", wcet=5, period=10)],
            [
                SecurityTask(name="hi", wcet=10, max_period=300),
                SecurityTask(name="lo", wcet=40, max_period=100),
            ],
        )
        design = Hydra(dual_core).design(taskset, {"a": 0, "b": 1})
        assert design.schedulable
        for name, response in design.response_times.items():
            assert response is not None, name


class TestHydraTMax:
    def test_periods_pinned_to_maximum(self, rover, rover_allocation, dual_core):
        design = HydraTMax(dual_core).design(rover, rover_allocation)
        assert design.schedulable
        assert design.scheme == "HYDRA-TMax"
        assert set(design.security_periods().values()) == {10_000}

    def test_acceptance_matches_hydra(self, rover, rover_allocation, dual_core):
        assert HydraTMax(dual_core).is_schedulable(rover, rover_allocation) == Hydra(
            dual_core
        ).is_schedulable(rover, rover_allocation)
