"""Unit tests for the GLOBAL-TMax baseline."""

import pytest

from repro.baselines.global_tmax import GlobalTMax
from repro.core.framework import SchedulingPolicy
from repro.model import Platform, RealTimeTask, SecurityTask, TaskSet


class TestGlobalTMax:
    def test_rover_is_schedulable_globally(self, rover, dual_core):
        design = GlobalTMax(dual_core).design(rover)
        assert design.schedulable
        assert design.policy is SchedulingPolicy.GLOBAL
        assert design.rt_allocation is None
        assert design.security_allocation is None

    def test_periods_pinned_to_maximum(self, rover, dual_core):
        design = GlobalTMax(dual_core).design(rover)
        assert set(design.security_periods().values()) == {10_000}

    def test_rt_allocation_argument_ignored(self, rover, rover_allocation, dual_core):
        with_alloc = GlobalTMax(dual_core).design(rover, rover_allocation)
        without = GlobalTMax(dual_core).design(rover)
        assert with_alloc.schedulable == without.schedulable

    def test_overload_rejected(self, dual_core):
        taskset = TaskSet.create(
            [RealTimeTask(name=f"rt{i}", wcet=9, period=10) for i in range(3)],
            [SecurityTask(name="ids", wcet=5, max_period=100)],
        )
        design = GlobalTMax(dual_core).design(taskset)
        assert not design.schedulable
        assert "unschedulable_task" in design.metadata

    def test_is_schedulable(self, rover, dual_core):
        assert GlobalTMax(dual_core).is_schedulable(rover)
