"""Unit tests for partitioned RT schedulability checks."""

import pytest

from repro.model import Platform, RealTimeTask, SecurityTask, TaskSet
from repro.schedulability.partitioned import (
    partitioned_rt_schedulable,
    rt_response_times,
    rt_tasks_by_core,
)


def taskset():
    return TaskSet.create(
        [
            RealTimeTask(name="a", wcet=2, period=10),
            RealTimeTask(name="b", wcet=6, period=20),
            RealTimeTask(name="c", wcet=3, period=15),
        ],
        [SecurityTask(name="ids", wcet=1, max_period=100)],
    )


class TestGrouping:
    def test_groups_by_core(self, dual_core):
        groups = rt_tasks_by_core(taskset(), {"a": 0, "b": 0, "c": 1}, dual_core)
        assert [t.name for t in groups[0]] == ["a", "b"]
        assert [t.name for t in groups[1]] == ["c"]

    def test_missing_allocation_rejected(self, dual_core):
        with pytest.raises(KeyError):
            rt_tasks_by_core(taskset(), {"a": 0, "b": 0}, dual_core)

    def test_out_of_range_core_rejected(self, dual_core):
        with pytest.raises(ValueError):
            rt_tasks_by_core(taskset(), {"a": 0, "b": 0, "c": 5}, dual_core)


class TestResponseTimes:
    def test_values(self, dual_core):
        times = rt_response_times(taskset(), {"a": 0, "b": 0, "c": 1}, dual_core)
        assert times["a"] == 2
        assert times["b"] == 8  # 6 + ceil(8/10) * 2
        assert times["c"] == 3

    def test_security_tasks_do_not_interfere(self, dual_core):
        # Security tasks have lower priority; RT response times are identical
        # with or without them.
        base = taskset()
        without_security = TaskSet.create(list(base.rt_tasks), [])
        allocation = {"a": 0, "b": 0, "c": 1}
        assert rt_response_times(base, allocation, dual_core) == rt_response_times(
            without_security, allocation, dual_core
        )


class TestSchedulability:
    def test_schedulable_partition(self, dual_core):
        result = partitioned_rt_schedulable(taskset(), {"a": 0, "b": 1, "c": 1}, dual_core)
        assert result.schedulable
        assert result.unschedulable_tasks == ()

    def test_overloaded_core_detected(self, dual_core):
        heavy = TaskSet.create(
            [
                RealTimeTask(name="x", wcet=8, period=10),
                RealTimeTask(name="y", wcet=5, period=12),
            ],
            [],
        )
        result = partitioned_rt_schedulable(heavy, {"x": 0, "y": 0}, dual_core)
        assert not result.schedulable
        assert "y" in result.unschedulable_tasks
