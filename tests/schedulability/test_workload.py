"""Unit and property tests for the workload/interference primitives (Eq. 2-5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedulability.workload import (
    carry_in_workload,
    interference_bound,
    non_carry_in_workload,
    periodic_workload,
)


class TestPeriodicWorkload:
    @pytest.mark.parametrize(
        "wcet,period,window,expected",
        [
            (2, 5, 0, 0),
            (2, 5, 1, 1),
            (2, 5, 2, 2),
            (2, 5, 5, 2),
            (2, 5, 6, 3),
            (2, 5, 12, 6),
            (5, 5, 12, 12),  # utilization 1: the whole window is workload
        ],
    )
    def test_values(self, wcet, period, window, expected):
        assert periodic_workload(wcet, period, window) == expected

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            periodic_workload(0, 5, 10)
        with pytest.raises(ValueError):
            periodic_workload(2, 0, 10)
        with pytest.raises(ValueError):
            periodic_workload(2, 5, -1)

    @given(
        wcet=st.integers(1, 50),
        extra=st.integers(0, 100),
        window=st.integers(0, 2000),
    )
    @settings(max_examples=200)
    def test_monotone_in_window(self, wcet, extra, window):
        period = wcet + extra
        assert periodic_workload(wcet, period, window) <= periodic_workload(
            wcet, period, window + 1
        )

    @given(wcet=st.integers(1, 50), extra=st.integers(0, 100), window=st.integers(0, 2000))
    @settings(max_examples=200)
    def test_never_exceeds_window_or_density(self, wcet, extra, window):
        period = wcet + extra
        workload = periodic_workload(wcet, period, window)
        assert workload <= window
        # At most one extra job's worth beyond the fluid bound.
        assert workload <= wcet * (window / period) + wcet


class TestCarryInWorkload:
    def test_matches_paper_structure(self):
        # C=3, T=10, R=3: xbar = 3-1+10-3 = 9
        assert carry_in_workload(3, 10, 3, 10) == periodic_workload(3, 10, 1) + 2

    def test_zero_window(self):
        assert carry_in_workload(3, 10, 3, 0) == 0

    def test_unit_wcet_has_no_carried_execution(self):
        assert carry_in_workload(1, 10, 1, 5) == non_carry_in_workload(1, 10, max(5 - 9, 0))

    def test_response_below_wcet_rejected(self):
        with pytest.raises(ValueError):
            carry_in_workload(3, 10, 2, 5)

    @given(
        wcet=st.integers(1, 20),
        extra=st.integers(0, 50),
        slack=st.integers(0, 30),
        window=st.integers(0, 500),
    )
    @settings(max_examples=200)
    def test_monotone_in_window(self, wcet, extra, slack, window):
        period = wcet + extra
        response = min(wcet + slack, period)
        assert carry_in_workload(wcet, period, response, window) <= carry_in_workload(
            wcet, period, response, window + 1
        )

    @given(
        wcet=st.integers(1, 20),
        extra=st.integers(0, 50),
        slack=st.integers(0, 30),
        window=st.integers(0, 500),
    )
    @settings(max_examples=200)
    def test_carry_in_at_least_non_carry_in_minus_one_job(self, wcet, extra, slack, window):
        """W^CI can exceed W^NC; it never falls below W^NC by more than one job."""
        period = wcet + extra
        response = min(wcet + slack, period)
        ci = carry_in_workload(wcet, period, response, window)
        nc = non_carry_in_workload(wcet, period, window)
        assert ci >= nc - wcet


class TestInterferenceBound:
    def test_clamps_to_window_minus_wcet_plus_one(self):
        assert interference_bound(100, 10, 4) == 7

    def test_passes_small_workloads_through(self):
        assert interference_bound(3, 10, 4) == 3

    def test_zero_when_window_smaller_than_wcet(self):
        assert interference_bound(100, 3, 4) == 0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            interference_bound(-1, 10, 4)
        with pytest.raises(ValueError):
            interference_bound(1, -1, 4)
        with pytest.raises(ValueError):
            interference_bound(1, 10, 0)

    @given(
        workload=st.integers(0, 1000),
        window=st.integers(0, 1000),
        wcet=st.integers(1, 100),
    )
    @settings(max_examples=200)
    def test_never_exceeds_either_bound(self, workload, window, wcet):
        bound = interference_bound(workload, window, wcet)
        assert bound <= workload
        assert bound <= max(window - wcet + 1, 0)
        assert bound >= 0
