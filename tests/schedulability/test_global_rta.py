"""Unit tests for the global fixed-priority RTA (GLOBAL-TMax engine)."""

import pytest

from repro.model import Platform, RealTimeTask, SecurityTask, TaskSet
from repro.schedulability.global_rta import (
    GlobalTaskView,
    global_response_time,
    global_taskset_schedulable,
)


def view(name, wcet, period, priority, limit=None):
    return GlobalTaskView(
        name=name,
        wcet=wcet,
        period=period,
        deadline_limit=limit if limit is not None else period,
        priority=priority,
    )


class TestGlobalResponseTime:
    def test_highest_priority_task_runs_immediately(self):
        assert global_response_time(view("a", 3, 10, 0), [], {}, num_cores=2) == 3

    def test_two_tasks_two_cores_run_in_parallel(self):
        hp = [view("a", 5, 10, 0)]
        assert global_response_time(view("b", 4, 10, 1), hp, {"a": 5}, 2) == 4

    def test_single_core_reduces_to_uniprocessor_value(self):
        hp = [view("a", 1, 4, 0)]
        assert global_response_time(view("b", 2, 10, 1), hp, {"a": 1}, 1) == 3

    def test_unschedulable_returns_none(self):
        hp = [view("a", 9, 10, 0), view("b", 9, 10, 1)]
        known = {"a": 9, "b": 9}
        assert global_response_time(view("c", 5, 12, 2), hp, known, 2) is None

    def test_missing_hp_response_time_falls_back_to_period(self):
        hp = [view("a", 2, 10, 0)]
        result = global_response_time(view("b", 3, 20, 1), hp, {}, 2)
        assert result is not None and result >= 3

    def test_wcet_above_limit(self):
        assert global_response_time(view("a", 30, 20, 0), [], {}, 2) is None

    def test_invalid_cores(self):
        with pytest.raises(ValueError):
            global_response_time(view("a", 1, 10, 0), [], {}, 0)


class TestGlobalTasksetSchedulable:
    def test_light_taskset_is_schedulable(self, dual_core):
        taskset = TaskSet.create(
            [RealTimeTask(name="rt", wcet=2, period=10)],
            [SecurityTask(name="ids", wcet=3, max_period=100)],
        )
        result = global_taskset_schedulable(taskset, dual_core)
        assert result.schedulable
        assert result.response_time("rt") == 2
        assert result.response_time("ids") is not None

    def test_overloaded_taskset_rejected(self, dual_core):
        taskset = TaskSet.create(
            [
                RealTimeTask(name=f"rt{i}", wcet=9, period=10) for i in range(3)
            ],
            [],
        )
        result = global_taskset_schedulable(taskset, dual_core)
        assert not result.schedulable
        assert result.first_failure is not None

    def test_analysis_stops_at_first_failure(self, dual_core):
        taskset = TaskSet.create(
            [RealTimeTask(name=f"rt{i}", wcet=9, period=10) for i in range(3)],
            [SecurityTask(name="ids", wcet=1, max_period=50)],
        )
        result = global_taskset_schedulable(taskset, dual_core)
        assert not result.schedulable
        assert result.response_time("ids") is None

    def test_security_limits_use_effective_period(self, dual_core):
        taskset = TaskSet.create(
            [RealTimeTask(name="rt", wcet=5, period=10)],
            [SecurityTask(name="ids", wcet=8, max_period=2000, period=20)],
        )
        result = global_taskset_schedulable(taskset, dual_core)
        # With the assigned period of 20 the deadline limit is 20 (not 2000).
        assert result.schedulable
        assert result.response_time("ids") <= 20
