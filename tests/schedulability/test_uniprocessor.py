"""Unit and property tests for the uniprocessor response-time analysis (Eq. 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedulability.uniprocessor import (
    UniprocessorTask,
    core_is_schedulable,
    liu_layland_bound,
    response_time_upper_bound,
    uniprocessor_response_time,
)


class TestUniprocessorTask:
    def test_deadline_defaults_to_period(self):
        assert UniprocessorTask("t", wcet=2, period=10).deadline == 10

    def test_utilization(self):
        assert UniprocessorTask("t", wcet=2, period=10).utilization == pytest.approx(0.2)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            UniprocessorTask("t", wcet=0, period=10)
        with pytest.raises(ValueError):
            UniprocessorTask("t", wcet=1, period=0)


class TestResponseTime:
    def test_no_interference(self):
        assert uniprocessor_response_time(5, [], limit=100) == 5

    def test_classic_example(self):
        # Liu & Layland style: C1=1,T1=4 ; C2=2 -> R2 = 3
        hp = [UniprocessorTask("a", wcet=1, period=4)]
        assert uniprocessor_response_time(2, hp, limit=100) == 3

    def test_multi_task_interference(self):
        hp = [
            UniprocessorTask("a", wcet=1, period=4),
            UniprocessorTask("b", wcet=2, period=10),
        ]
        # R = 6: 2 + 2*1 (releases at 0 and 4) + 1*2
        assert uniprocessor_response_time(2, hp, limit=100) == 6

    def test_rover_camera_on_shared_core(self):
        nav = UniprocessorTask("nav", wcet=240, period=500)
        assert uniprocessor_response_time(1120, [nav], limit=5000) == 2320

    def test_rover_tripwire_on_camera_core(self):
        camera = UniprocessorTask("camera", wcet=1120, period=5000)
        assert uniprocessor_response_time(5342, [camera], limit=10_000) == 7582

    def test_unschedulable_returns_none(self):
        hp = [UniprocessorTask("a", wcet=5, period=10)]
        # The exact response time would be 16, above the limit of 15.
        assert uniprocessor_response_time(6, hp, limit=15) is None

    def test_wcet_above_limit(self):
        assert uniprocessor_response_time(10, [], limit=5) is None

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            uniprocessor_response_time(0, [], limit=10)
        with pytest.raises(ValueError):
            uniprocessor_response_time(1, [], limit=0)

    @given(
        wcets=st.lists(st.integers(1, 8), min_size=1, max_size=4),
        gaps=st.lists(st.integers(5, 40), min_size=4, max_size=4),
        own=st.integers(1, 10),
    )
    @settings(max_examples=150, deadline=None)
    def test_exact_never_exceeds_closed_form_bound(self, wcets, gaps, own):
        hp = [
            UniprocessorTask(f"t{i}", wcet=w, period=w + gaps[i])
            for i, w in enumerate(wcets)
        ]
        bound = response_time_upper_bound(own, hp)
        exact = uniprocessor_response_time(own, hp, limit=10_000)
        if bound is None:
            return  # hp utilization >= 1, nothing to compare
        if exact is not None:
            assert exact <= bound + 1e-9

    @given(
        wcets=st.lists(st.integers(1, 8), min_size=0, max_size=4),
        gaps=st.lists(st.integers(5, 40), min_size=4, max_size=4),
        own=st.integers(1, 10),
    )
    @settings(max_examples=150, deadline=None)
    def test_response_at_least_wcet_plus_hp_wcets(self, wcets, gaps, own):
        hp = [
            UniprocessorTask(f"t{i}", wcet=w, period=w + gaps[i])
            for i, w in enumerate(wcets)
        ]
        exact = uniprocessor_response_time(own, hp, limit=100_000)
        if exact is not None:
            assert exact >= own + sum(wcets)


class TestCoreSchedulability:
    def test_schedulable_pair(self):
        assert core_is_schedulable(
            [
                UniprocessorTask("hi", wcet=2, period=5),
                UniprocessorTask("lo", wcet=2, period=10),
            ]
        )

    def test_unschedulable_pair(self):
        assert not core_is_schedulable(
            [
                UniprocessorTask("hi", wcet=4, period=5),
                UniprocessorTask("lo", wcet=3, period=10),
            ]
        )

    def test_empty_core(self):
        assert core_is_schedulable([])

    def test_constrained_deadline_enforced(self):
        tasks = [
            UniprocessorTask("hi", wcet=3, period=10),
            UniprocessorTask("lo", wcet=3, period=20, deadline=5),
        ]
        assert not core_is_schedulable(tasks)


class TestLiuLayland:
    def test_single_task_bound_is_one(self):
        assert liu_layland_bound(1) == pytest.approx(1.0)

    def test_bound_decreases_with_task_count(self):
        assert liu_layland_bound(2) > liu_layland_bound(10)

    def test_limit_is_ln2(self):
        assert liu_layland_bound(10_000) == pytest.approx(0.6931, abs=1e-3)

    def test_invalid(self):
        with pytest.raises(ValueError):
            liu_layland_bound(0)
