"""Unit and property tests for carry-in set selection (Lemma 2 / Eq. 8)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedulability.carry_in import (
    count_carry_in_sets,
    enumerate_carry_in_sets,
    greedy_worst_case_interference,
)


class TestGreedySelection:
    def test_picks_largest_deltas(self):
        total, chosen = greedy_worst_case_interference([1, 2, 3], [5, 2, 4], 1)
        assert total == 1 + 2 + 3 + 4  # upgrade index 0 (+4)
        assert chosen == (0,)

    def test_zero_carry_in_allowed(self):
        total, chosen = greedy_worst_case_interference([1, 2, 3], [5, 2, 4], 0)
        assert total == 6
        assert chosen == ()

    def test_negative_deltas_never_selected(self):
        total, chosen = greedy_worst_case_interference([5, 5], [1, 1], 2)
        assert total == 10
        assert chosen == ()

    def test_more_slots_than_tasks(self):
        total, chosen = greedy_worst_case_interference([1, 1], [2, 3], 5)
        assert total == 5
        assert chosen == (0, 1)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            greedy_worst_case_interference([1], [1, 2], 1)

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            greedy_worst_case_interference([-1], [1], 1)

    @given(
        nc=st.lists(st.integers(0, 50), min_size=0, max_size=8),
        deltas=st.lists(st.integers(-20, 50), min_size=0, max_size=8),
        limit=st.integers(0, 4),
    )
    @settings(max_examples=200)
    def test_matches_exhaustive_enumeration(self, nc, deltas, limit):
        size = min(len(nc), len(deltas))
        nc = nc[:size]
        ci = [max(0, nc[i] + deltas[i]) for i in range(size)]
        greedy_total, _ = greedy_worst_case_interference(nc, ci, limit)
        best = 0 if size else 0
        for subset in enumerate_carry_in_sets(size, limit):
            total = sum(
                ci[i] if i in subset else nc[i] for i in range(size)
            )
            best = max(best, total)
        assert greedy_total == best


class TestEnumeration:
    def test_small_case(self):
        assert sorted(enumerate_carry_in_sets(3, 1)) == [(), (0,), (1,), (2,)]

    def test_zero_tasks(self):
        assert list(enumerate_carry_in_sets(0, 3)) == [()]

    def test_count_matches_enumeration(self):
        for tasks in range(6):
            for limit in range(4):
                assert count_carry_in_sets(tasks, limit) == len(
                    list(enumerate_carry_in_sets(tasks, limit))
                )

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            list(enumerate_carry_in_sets(-1, 1))
        with pytest.raises(ValueError):
            count_carry_in_sets(1, -1)
