"""Unit and property tests for the Randfixedsum implementation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generation.randfixedsum import randfixedsum


class TestRandfixedsum:
    def test_shape(self):
        values = randfixedsum(5, 2.0, num_sets=7, rng=np.random.default_rng(0))
        assert values.shape == (7, 5)

    def test_rows_sum_to_target(self):
        values = randfixedsum(6, 2.5, num_sets=20, rng=np.random.default_rng(1))
        assert np.allclose(values.sum(axis=1), 2.5)

    def test_values_in_unit_interval(self):
        values = randfixedsum(6, 2.5, num_sets=50, rng=np.random.default_rng(2))
        assert values.min() >= 0.0
        assert values.max() <= 1.0

    def test_single_value(self):
        values = randfixedsum(1, 0.7, num_sets=3, rng=np.random.default_rng(3))
        assert np.allclose(values, 0.7)

    def test_extreme_totals(self):
        zero = randfixedsum(4, 0.0, rng=np.random.default_rng(4))
        assert np.allclose(zero, 0.0)
        full = randfixedsum(4, 4.0, rng=np.random.default_rng(5))
        assert np.allclose(full, 1.0)

    def test_determinism_with_seeded_generator(self):
        a = randfixedsum(5, 1.5, num_sets=4, rng=np.random.default_rng(42))
        b = randfixedsum(5, 1.5, num_sets=4, rng=np.random.default_rng(42))
        assert np.array_equal(a, b)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            randfixedsum(0, 0.5)
        with pytest.raises(ValueError):
            randfixedsum(3, -0.1)
        with pytest.raises(ValueError):
            randfixedsum(3, 3.5)
        with pytest.raises(ValueError):
            randfixedsum(3, 1.0, num_sets=0)

    @given(
        n=st.integers(2, 12),
        fraction=st.floats(0.05, 0.95),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=100, deadline=None)
    def test_invariants_hold_for_random_parameters(self, n, fraction, seed):
        total = fraction * n
        values = randfixedsum(n, total, num_sets=3, rng=np.random.default_rng(seed))
        assert values.shape == (3, n)
        assert np.all(values >= 0.0)
        assert np.all(values <= 1.0)
        assert np.allclose(values.sum(axis=1), total, atol=1e-8)

    def test_distribution_is_not_degenerate(self):
        """Values should vary across positions, not collapse to total / n."""
        values = randfixedsum(8, 2.0, num_sets=200, rng=np.random.default_rng(7))
        assert values.std() > 0.05
