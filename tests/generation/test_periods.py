"""Unit and property tests for log-uniform period generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generation.periods import log_uniform_periods


class TestLogUniformPeriods:
    def test_count_and_bounds(self):
        periods = log_uniform_periods(100, 10, 1000, rng=np.random.default_rng(0))
        assert len(periods) == 100
        assert all(10 <= p <= 1000 for p in periods)
        assert all(isinstance(p, int) for p in periods)

    def test_zero_count(self):
        assert log_uniform_periods(0, 10, 100) == []

    def test_degenerate_range(self):
        assert log_uniform_periods(5, 42, 42, rng=np.random.default_rng(1)) == [42] * 5

    def test_granularity(self):
        periods = log_uniform_periods(
            50, 100, 1000, rng=np.random.default_rng(2), granularity=10
        )
        assert all(p % 10 == 0 for p in periods)

    def test_log_spread(self):
        """A log-uniform draw puts roughly half the mass below the geometric mean."""
        periods = log_uniform_periods(4000, 10, 1000, rng=np.random.default_rng(3))
        below = sum(1 for p in periods if p < 100)
        assert 0.4 < below / len(periods) < 0.6

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            log_uniform_periods(-1, 10, 100)
        with pytest.raises(ValueError):
            log_uniform_periods(1, 0, 100)
        with pytest.raises(ValueError):
            log_uniform_periods(1, 100, 10)
        with pytest.raises(ValueError):
            log_uniform_periods(1, 10, 100, granularity=0)

    @given(
        count=st.integers(1, 50),
        low=st.integers(1, 500),
        span=st.integers(0, 2000),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=100, deadline=None)
    def test_bounds_always_respected(self, count, low, span, seed):
        high = low + span
        periods = log_uniform_periods(count, low, high, rng=np.random.default_rng(seed))
        assert len(periods) == count
        assert all(low <= p <= high for p in periods)
