"""Unit and property tests for the Table-3 taskset generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.generation.taskset_generator import (
    TasksetGenerationConfig,
    TasksetGenerator,
    generate_taskset,
)


class TestConfig:
    def test_default_matches_table3(self):
        config = TasksetGenerationConfig()
        assert config.rt_tasks_per_core == (3, 10)
        assert config.security_tasks_per_core == (2, 5)
        assert config.rt_period_range == (10, 1000)
        assert config.security_max_period_range == (1500, 3000)
        assert config.security_utilization_ratio == pytest.approx(0.3)

    def test_absolute_task_count_ranges_scale_with_cores(self):
        config = TasksetGenerationConfig(num_cores=4)
        assert config.rt_task_count_range == (12, 40)
        assert config.security_task_count_range == (8, 20)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TasksetGenerationConfig(num_cores=0)
        with pytest.raises(ConfigurationError):
            TasksetGenerationConfig(rt_tasks_per_core=(5, 2))
        with pytest.raises(ConfigurationError):
            TasksetGenerationConfig(security_utilization_ratio=0.0)
        with pytest.raises(ConfigurationError):
            TasksetGenerationConfig(ticks_per_ms=0)


class TestGenerator:
    def test_task_counts_in_range(self):
        config = TasksetGenerationConfig(num_cores=2)
        generator = TasksetGenerator(config, seed=0)
        for _ in range(10):
            taskset = generator.generate(1.0)
            assert 6 <= taskset.num_rt_tasks <= 20
            assert 4 <= taskset.num_security_tasks <= 10

    def test_utilization_close_to_target(self):
        generator = TasksetGenerator(TasksetGenerationConfig(num_cores=2), seed=1)
        for target in (0.4, 0.9, 1.5):
            taskset = generator.generate(target)
            assert taskset.minimum_utilization == pytest.approx(target, rel=0.25)

    def test_security_share_close_to_thirty_percent(self):
        generator = TasksetGenerator(TasksetGenerationConfig(num_cores=2), seed=2)
        taskset = generator.generate(1.3)
        ratio = taskset.security_min_utilization / taskset.rt_utilization
        assert ratio == pytest.approx(0.3, rel=0.25)

    def test_periods_within_ranges(self):
        config = TasksetGenerationConfig(num_cores=2, ticks_per_ms=1)
        taskset = TasksetGenerator(config, seed=3).generate(1.0)
        for task in taskset.rt_tasks:
            assert 10 <= task.period <= 1000
        for task in taskset.security_tasks:
            assert 1500 <= task.max_period <= 3000

    def test_ticks_per_ms_scaling(self):
        config = TasksetGenerationConfig(num_cores=2, ticks_per_ms=10)
        taskset = TasksetGenerator(config, seed=4).generate(1.0)
        assert all(100 <= task.period <= 10_000 for task in taskset.rt_tasks)

    def test_determinism(self):
        a = TasksetGenerator(TasksetGenerationConfig(), seed=7).generate(1.0)
        b = TasksetGenerator(TasksetGenerationConfig(), seed=7).generate(1.0)
        assert a.security_max_period_vector() == b.security_max_period_vector()
        assert [t.wcet for t in a.rt_tasks] == [t.wcet for t in b.rt_tasks]

    def test_generate_normalized(self):
        generator = TasksetGenerator(TasksetGenerationConfig(num_cores=4), seed=5)
        taskset = generator.generate_normalized(0.5)
        assert taskset.minimum_utilization == pytest.approx(2.0, rel=0.15)

    def test_generate_group(self):
        generator = TasksetGenerator(TasksetGenerationConfig(num_cores=2), seed=6)
        group = generator.generate_group((0.3, 0.4), count=5)
        assert len(group) == 5
        for taskset in group:
            assert 0.25 <= taskset.normalized_utilization(2) <= 0.55

    def test_invalid_requests(self):
        generator = TasksetGenerator(TasksetGenerationConfig(num_cores=2), seed=8)
        with pytest.raises(ConfigurationError):
            generator.generate(0.0)
        with pytest.raises(ConfigurationError):
            generator.generate(3.0)
        with pytest.raises(ConfigurationError):
            generator.generate_group((0.0, 0.5), 3)
        with pytest.raises(ConfigurationError):
            generator.generate_group((0.2, 0.5), 0)

    def test_rng_and_seed_mutually_exclusive(self):
        with pytest.raises(ConfigurationError):
            TasksetGenerator(
                TasksetGenerationConfig(), rng=np.random.default_rng(0), seed=1
            )

    def test_convenience_wrapper(self):
        taskset = generate_taskset(1.0, seed=42)
        assert taskset.num_rt_tasks > 0
        assert taskset.num_security_tasks > 0

    @given(target=st.floats(0.1, 1.9), seed=st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_generated_tasksets_are_structurally_valid(self, target, seed):
        taskset = generate_taskset(target, seed=seed)
        for task in taskset.rt_tasks:
            assert 1 <= task.wcet <= task.period
        for task in taskset.security_tasks:
            assert 1 <= task.wcet <= task.max_period
            assert task.period is None
