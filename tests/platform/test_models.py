"""Unit tests for the three platform-model registries and the bundle."""

import pytest

from repro.errors import ConfigurationError
from repro.model import RealTimeTask, SecurityTask, TaskSet
from repro.model.tasks import ResourceClaim
from repro.platform import (
    DEFAULT_PLATFORM,
    OVERHEAD_MODELS,
    RESOURCE_PROTOCOLS,
    SCHEDULER_MODELS,
    ZERO_OVERHEADS,
    OverheadModel,
    PlatformModel,
    blocking_terms,
    parse_overhead_model,
    resolve_protocol,
    resolve_scheduler_model,
)
from repro.platform.models import (
    EarliestDeadlineFirstModel,
    RateMonotonicModel,
    SchedulerModel,
    register_scheduler_model,
)
from repro.sim.schedulers import ReadyJob


def make_job(**overrides):
    defaults = dict(
        job_id="t:0",
        task_name="t",
        priority=5,
        is_security=False,
        bound_core=None,
        last_core=None,
        release_time=0,
        progress=0,
        absolute_deadline=None,
    )
    defaults.update(overrides)
    return ReadyJob(**defaults)


class TestRegistries:
    def test_builtin_names(self):
        assert set(SCHEDULER_MODELS) >= {"rm", "edf"}
        assert set(RESOURCE_PROTOCOLS) == {"none", "pip", "pcp"}
        assert set(OVERHEAD_MODELS) >= {"zero", "const"}

    def test_resolvers_reject_unknown_names(self):
        with pytest.raises(ConfigurationError, match="unknown scheduler model"):
            resolve_scheduler_model("fifo")
        with pytest.raises(ConfigurationError, match="unknown resource protocol"):
            resolve_protocol("mrsp")
        with pytest.raises(ConfigurationError, match="unknown overhead model"):
            parse_overhead_model("gaussian:3")

    def test_register_requires_a_name(self):
        class Nameless(SchedulerModel):
            pass

        with pytest.raises(ConfigurationError, match="non-empty name"):
            register_scheduler_model(Nameless())

    def test_registration_is_by_name_and_last_wins(self):
        class Custom(RateMonotonicModel):
            name = "test-custom"

        try:
            model = register_scheduler_model(Custom())
            assert resolve_scheduler_model("test-custom") is model
        finally:
            SCHEDULER_MODELS.pop("test-custom", None)


class TestSchedulerModels:
    def test_rm_key_is_the_static_sort_key(self):
        job = make_job(priority=3, release_time=7)
        assert RateMonotonicModel().sort_key(job) == job.sort_key

    def test_edf_orders_by_absolute_deadline_within_a_band(self):
        edf = EarliestDeadlineFirstModel()
        early = make_job(job_id="a:0", priority=9, absolute_deadline=50)
        late = make_job(job_id="b:0", priority=1, absolute_deadline=80)
        # Deadline wins over static priority.
        assert edf.sort_key(early) < edf.sort_key(late)

    def test_edf_keeps_rt_above_security(self):
        """Banded EDF: a security job never outranks an RT job, even with
        an earlier absolute deadline (the paper's Section 3 invariant)."""
        edf = EarliestDeadlineFirstModel()
        rt = make_job(job_id="rt:0", absolute_deadline=1_000)
        security = make_job(
            job_id="sec:0", is_security=True, absolute_deadline=10
        )
        assert edf.sort_key(rt) < edf.sort_key(security)

    def test_edf_without_deadline_falls_back_to_release(self):
        edf = EarliestDeadlineFirstModel()
        job = make_job(release_time=42, absolute_deadline=None)
        assert edf.sort_key(job)[1] == 42


class TestOverheadModels:
    def test_zero_is_the_default_and_canonical(self):
        assert ZERO_OVERHEADS.is_zero
        assert ZERO_OVERHEADS.describe() == "zero"
        assert parse_overhead_model("zero") is ZERO_OVERHEADS

    def test_zero_takes_no_parameters(self):
        with pytest.raises(ConfigurationError, match="takes no parameters"):
            parse_overhead_model("zero:1")

    def test_const_spellings_canonicalise_equal(self):
        assert parse_overhead_model("const:5") == parse_overhead_model("const:5,0")
        assert parse_overhead_model("const:5").describe() == "const:5,0"
        assert parse_overhead_model("const:2,3").describe() == "const:2,3"

    def test_const_requires_one_or_two_integer_costs(self):
        with pytest.raises(ConfigurationError, match="1 or 2 costs"):
            parse_overhead_model("const:1,2,3")
        with pytest.raises(ConfigurationError, match="1 or 2 costs"):
            parse_overhead_model("const:")
        with pytest.raises(ConfigurationError, match="must be integers"):
            parse_overhead_model("const:five")

    def test_costs_must_be_non_negative_ints(self):
        with pytest.raises(ConfigurationError, match=">= 0"):
            OverheadModel(switch_cost=-1)
        with pytest.raises(ConfigurationError, match="must be an int"):
            OverheadModel(switch_cost=1.5)
        with pytest.raises(ConfigurationError, match="must be an int"):
            OverheadModel(migration_cost=True)


class TestPlatformModelBundle:
    def test_parse_defaults_to_the_papers_platform(self):
        model = PlatformModel.parse()
        assert model == DEFAULT_PLATFORM
        assert model.is_default
        assert model.describe() == {
            "scheduler": "rm",
            "protocol": "none",
            "overheads": "zero",
        }

    def test_equal_spellings_compare_and_hash_equal(self):
        a = PlatformModel.parse("edf", "pip", "const:5")
        b = PlatformModel.parse("edf", "pip", "const:5,0")
        assert a == b
        assert hash(a) == hash(b)
        assert a.describe() == b.describe()

    def test_parse_validates_every_axis(self):
        with pytest.raises(ConfigurationError, match="unknown scheduler"):
            PlatformModel.parse(scheduler="fifo")
        with pytest.raises(ConfigurationError, match="unknown resource protocol"):
            PlatformModel.parse(protocol="mrsp")
        with pytest.raises(ConfigurationError, match="unknown overhead model"):
            PlatformModel.parse(overheads="gaussian")

    def test_string_overheads_are_parsed_by_the_constructor(self):
        model = PlatformModel(scheduler="rm", protocol="none", overheads="const:4")
        assert model.overheads == OverheadModel(switch_cost=4)
        with pytest.raises(ConfigurationError, match="must be an OverheadModel"):
            PlatformModel(scheduler="rm", protocol="none", overheads=7)

    def test_accessors_resolve_the_registries(self):
        model = PlatformModel.parse("edf", "pcp", "zero")
        assert model.scheduler_model.name == "edf"
        assert model.resource_protocol.ceiling_check
        assert not model.is_default


class TestBlockingTerms:
    def taskset(self):
        """Priorities after TaskSet.create: rt-a=0, rt-b=1, sec-a=2, sec-b=3.

        ``disk`` is shared by rt-b (40 ticks) and sec-b (25 ticks); ``log``
        is shared by sec-a (10 ticks) and sec-b (15 ticks).
        """
        return TaskSet.create(
            [
                RealTimeTask(name="rt-a", wcet=10, period=50),
                RealTimeTask(
                    name="rt-b",
                    wcet=60,
                    period=300,
                    claims=(ResourceClaim(resource="disk", start=5, duration=40),),
                ),
            ],
            [
                SecurityTask(
                    name="sec-a",
                    wcet=30,
                    max_period=900,
                    claims=(ResourceClaim(resource="log", start=0, duration=10),),
                ),
                SecurityTask(
                    name="sec-b",
                    wcet=50,
                    max_period=1000,
                    claims=(
                        ResourceClaim(resource="disk", start=0, duration=25),
                        ResourceClaim(resource="log", start=30, duration=15),
                    ),
                ),
            ],
        )

    def test_none_protocol_has_no_terms(self):
        assert blocking_terms(self.taskset(), "none") == {}

    def test_unclaimed_taskset_has_no_terms(self):
        taskset = TaskSet.create(
            [RealTimeTask(name="rt", wcet=1, period=10)],
            [SecurityTask(name="sec", wcet=1, max_period=100)],
        )
        assert blocking_terms(taskset, "pip") == {}
        assert blocking_terms(taskset, "pcp") == {}

    def test_pip_sums_one_section_per_lower_priority_task(self):
        terms = blocking_terms(self.taskset(), "pip")
        # rt-a shares nothing and no ceiling reaches priority 0.
        assert "rt-a" not in terms
        # rt-b can be blocked by sec-b's disk section (ceiling = rt-b).
        assert terms["rt-b"] == 25
        # sec-a: lower-priority sec-b's longest blocking-capable section
        # is its disk section (ceiling 1 <= 2) of 25 ticks.
        assert terms["sec-a"] == 25
        # sec-b has no lower-priority tasks.
        assert "sec-b" not in terms

    def test_pcp_takes_the_single_worst_section(self):
        pip = blocking_terms(self.taskset(), "pip")
        pcp = blocking_terms(self.taskset(), "pcp")
        assert set(pcp) == set(pip)
        for name, term in pcp.items():
            assert term <= pip[name]
        assert pcp["rt-b"] == 25

    def test_protocol_object_and_name_agree(self):
        taskset = self.taskset()
        assert blocking_terms(taskset, resolve_protocol("pip")) == blocking_terms(
            taskset, "pip"
        )
