"""Differential campaign: both simulation backends under every platform.

The platform-model layer widens the simulators' input space along three
axes (scheduler model, resource protocol, overhead model), and the fast
backend's contract -- *bit-identical traces* -- must hold across all of it.
This suite mirrors ``tests/sim/test_fast_engine.py`` with claim-annotated
random task sets and the full platform grid: every trace comparison is a
full :class:`SimulationTrace` equality (dataclass equality covers slices,
job records and all counters) plus, where monitors exist, the derived
detection metrics.
"""

from __future__ import annotations

import dataclasses
import itertools

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import AllocationError, UnschedulableError
from repro.model import Platform, RealTimeTask, SecurityTask, TaskSet
from repro.model.tasks import ResourceClaim
from repro.platform import DEFAULT_PLATFORM, PlatformModel
from repro.rover.case_study import RoverCaseStudy, rover_monitors, rover_taskset
from repro.schemes import REGISTRY, SharedPhases
from repro.security.attacks import generate_attacks
from repro.security.detection import evaluate_detection
from repro.security.monitors import SecurityMonitor
from repro.sim import (
    EventCompressedSimulator,
    SimulationConfig,
    Simulator,
    simulate_design,
    simulate_design_fast,
)

SCHEDULERS = ["rm", "edf"]
PROTOCOLS = ["none", "pip", "pcp"]
OVERHEADS = ["zero", "const:1", "const:2,3"]

PLATFORM_GRID = [
    PlatformModel.parse(scheduler, protocol, overheads)
    for scheduler, protocol, overheads in itertools.product(
        SCHEDULERS, PROTOCOLS, OVERHEADS
    )
]


def both_traces(taskset, num_cores, policy, config, **allocations):
    """Run both backends on identical inputs and return (tick, fast)."""
    tick = Simulator(taskset, num_cores, policy, config=config, **allocations).run()
    fast = EventCompressedSimulator(
        taskset, num_cores, policy, config=config, **allocations
    ).run()
    return tick, fast


def _random_claims(rng: np.random.Generator, wcet: int) -> tuple:
    """Up to two non-overlapping critical sections on a tiny resource pool.

    A small pool ("R0"/"R1" shared by many tasks) maximises actual
    contention, which is where the lock protocols diverge from ``none``.
    """
    roll = rng.random()
    if roll < 0.45 or wcet < 2:
        if roll < 0.3 or wcet < 1:
            return ()
        start = int(rng.integers(0, wcet))
        duration = int(rng.integers(1, wcet - start + 1))
        resource = f"R{int(rng.integers(0, 2))}"
        return (ResourceClaim(resource=resource, start=start, duration=duration),)
    # Two sections on distinct resources, split across the WCET.
    half = wcet // 2
    first_start = int(rng.integers(0, half))
    first_duration = int(rng.integers(1, half - first_start + 1))
    second_start = int(rng.integers(half, wcet))
    second_duration = int(rng.integers(1, wcet - second_start + 1))
    order = int(rng.integers(0, 2))
    return (
        ResourceClaim(f"R{order}", first_start, first_duration),
        ResourceClaim(f"R{1 - order}", second_start, second_duration),
    )


def _random_taskset(rng: np.random.Generator) -> TaskSet:
    """Like the fast-engine suite's generator, plus resource claims."""
    rt = []
    for index in range(int(rng.integers(1, 4))):
        period = int(rng.integers(20, 400))
        wcet = int(rng.integers(1, max(2, period // 4)))
        rt.append(
            RealTimeTask(
                name=f"rt{index}",
                wcet=wcet,
                period=period,
                claims=_random_claims(rng, wcet),
            )
        )
    sec = []
    for index in range(int(rng.integers(1, 4))):
        max_period = int(rng.integers(100, 1500))
        wcet = int(rng.integers(1, max(2, max_period // 6)))
        sec.append(
            SecurityTask(
                name=f"sec{index}",
                wcet=wcet,
                max_period=max_period,
                coverage_units=int(rng.integers(1, 24)),
                claims=_random_claims(rng, wcet),
            )
        )
    return TaskSet.create(rt, sec)


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    taskset_seed=st.integers(min_value=0, max_value=2**32 - 1),
    policy=st.sampled_from(["partitioned", "semi-partitioned", "global"]),
    num_cores=st.integers(min_value=1, max_value=4),
    horizon=st.integers(min_value=1, max_value=2_000),
    scheduler=st.sampled_from(SCHEDULERS),
    protocol=st.sampled_from(PROTOCOLS),
    overheads=st.sampled_from(OVERHEADS),
)
def test_differential_platform_raw_policies(
    taskset_seed, policy, num_cores, horizon, scheduler, protocol, overheads
):
    """Backend equality holds for arbitrary claim-annotated task sets under
    every (scheduler, protocol, overheads) combination, every runtime
    policy, random bindings and jitter -- deadline misses allowed."""
    platform = PlatformModel.parse(scheduler, protocol, overheads)
    rng = np.random.default_rng(taskset_seed)
    taskset = _random_taskset(rng)
    rt_allocation = {
        task.name: int(rng.integers(0, num_cores)) for task in taskset.rt_tasks
    }
    security_allocation = {
        task.name: int(rng.integers(0, num_cores))
        for task in taskset.security_tasks
    }
    jitter = {
        task.name: int(rng.integers(0, 300))
        for task in taskset.all_tasks
        if rng.random() < 0.5
    }
    config = SimulationConfig(
        horizon=horizon,
        fail_on_rt_deadline_miss=False,
        release_jitter=jitter,
        platform=platform,
    )
    tick, fast = both_traces(
        taskset,
        num_cores,
        policy,
        config,
        rt_allocation=rt_allocation,
        security_allocation=security_allocation,
    )
    assert tick == fast


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    scheme=st.sampled_from(REGISTRY.names()),
    design_seed=st.integers(min_value=0, max_value=2**32 - 1),
    attack_seed=st.integers(min_value=0, max_value=2**32 - 1),
    num_cores=st.integers(min_value=1, max_value=3),
    horizon=st.integers(min_value=1, max_value=3_000),
    scheduler=st.sampled_from(SCHEDULERS),
    protocol=st.sampled_from(PROTOCOLS),
    overheads=st.sampled_from(OVERHEADS),
)
def test_differential_platform_registry_schemes(
    scheme,
    design_seed,
    attack_seed,
    num_cores,
    horizon,
    scheduler,
    protocol,
    overheads,
):
    """Any registered scheme's design simulates identically on both
    backends under every platform model, including the detection metrics of
    a random attack scenario."""
    platform = PlatformModel.parse(scheduler, protocol, overheads)
    rng = np.random.default_rng(design_seed)
    taskset = _random_taskset(rng)
    try:
        design = REGISTRY.create(scheme, Platform(num_cores=num_cores)).design(
            taskset, SharedPhases()
        )
    except (UnschedulableError, AllocationError):
        return  # the scheme rejected this random task set; nothing to compare
    if not design.schedulable:
        return
    jitter = {
        task.name: int(rng.integers(0, 100))
        for task in taskset.all_tasks
        if rng.random() < 0.5
    }
    # Overheads and lock stalls can push an RT job past its analysed
    # deadline (the analysis assumed the default platform): keep the miss
    # check off, the comparison is about backend equality.
    tick = simulate_design(
        design,
        horizon,
        fail_on_rt_deadline_miss=False,
        release_jitter=jitter,
        platform=platform,
    )
    fast = simulate_design_fast(
        design,
        horizon,
        fail_on_rt_deadline_miss=False,
        release_jitter=jitter,
        platform=platform,
    )
    assert tick == fast

    monitors = [
        SecurityMonitor.for_task(task) for task in design.taskset.security_tasks
    ]
    scenario = generate_attacks(
        monitors, horizon, rng=np.random.default_rng(attack_seed)
    )
    assert evaluate_detection(tick, monitors, scenario) == evaluate_detection(
        fast, monitors, scenario
    )


class TestRoverPlatformGrid:
    """Deterministic full-grid pass over the rover case study: every one of
    the 18 platform combinations, both designs, trace + detection parity."""

    @pytest.mark.parametrize(
        "platform", PLATFORM_GRID, ids=lambda p: "-".join(p.describe().values())
    )
    def test_rover_bit_identical_across_backends(self, platform):
        study = RoverCaseStudy()
        config = SimulationConfig(horizon=9_000, platform=platform)
        monitors = rover_monitors()
        scenario = generate_attacks(
            monitors, 9_000, rng=np.random.default_rng(7)
        )
        for design in (study.hydra_c_design(), study.hydra_design()):
            tick = Simulator.from_design(design, config).run()
            fast = EventCompressedSimulator.from_design(design, config).run()
            assert tick == fast
            assert evaluate_detection(
                tick, monitors, scenario
            ) == evaluate_detection(fast, monitors, scenario)

    def test_lock_protocol_actually_changes_the_schedule(self):
        """Sanity guard: a live lock conflict really alters the trace --
        otherwise the grid above proves nothing.  One core: the low-priority
        task grabs the resource first (the high-priority waiter is released
        2 ticks late), so under ``pip`` the waiter blocks at its section
        start while under ``none`` it preempts straight through."""
        taskset = TaskSet.create(
            [],
            [
                SecurityTask(
                    name="s-want",
                    wcet=5,
                    max_period=120,
                    claims=(ResourceClaim(resource="R", start=0, duration=3),),
                ),
                SecurityTask(
                    name="s-hold",
                    wcet=10,
                    max_period=100,
                    claims=(ResourceClaim(resource="R", start=0, duration=8),),
                ),
            ],
        )
        traces = {}
        for protocol in ("none", "pip"):
            config = SimulationConfig(
                horizon=200,
                release_jitter={"s-want": 2},
                platform=PlatformModel.parse(protocol=protocol),
            )
            tick, fast = both_traces(taskset, 1, "global", config)
            assert tick == fast
            traces[protocol] = tick
        assert traces["none"] != traces["pip"]

    def test_pcp_holder_is_not_reblocked_by_a_later_acquisition(self):
        """Regression: the PCP ceiling test guards *acquisitions* only.

        A job already inside its own critical section used to be re-marked
        blocked by ``begin_round`` when another job acquired a resource
        whose ceiling outranks it after the section started.  The tick
        engine re-decides every tick, so it stalled the holder
        mid-section; the fast engine (re-deciding only at events) did not
        -- the backends diverged (hypothesis: taskset seed 36511 under
        rm/pcp/const:2,3).  The holder must keep running and both
        backends must agree.
        """
        taskset = TaskSet.create(
            [
                RealTimeTask(
                    name="rt0", wcet=13, period=63,
                    claims=(ResourceClaim("R0", start=9, duration=4),),
                ),
                RealTimeTask(
                    name="rt1", wcet=9, period=339,
                    claims=(
                        ResourceClaim("R0", start=1, duration=3),
                        ResourceClaim("R1", start=4, duration=4),
                    ),
                ),
                RealTimeTask(
                    name="rt2", wcet=22, period=123,
                    claims=(
                        ResourceClaim("R1", start=7, duration=4),
                        ResourceClaim("R0", start=12, duration=2),
                    ),
                ),
            ],
            [
                SecurityTask(
                    name="sec0", wcet=54, max_period=335, coverage_units=8,
                    claims=(
                        ResourceClaim("R0", start=23, duration=1),
                        ResourceClaim("R1", start=48, duration=1),
                    ),
                ),
            ],
        )
        config = SimulationConfig(
            horizon=13,
            fail_on_rt_deadline_miss=False,
            platform=PlatformModel.parse("rm", "pcp", "const:2,3"),
        )
        tick, fast = both_traces(
            taskset,
            3,
            "global",
            config,
            rt_allocation={"rt0": 1, "rt1": 2, "rt2": 1},
            security_allocation={"sec0": 2},
        )
        assert tick == fast
        # rt2 enters its R1 section at progress 7 and must keep its core
        # through the horizon even though rt0 (whose R0 ceiling outranks
        # rt2) acquires R0 mid-section.
        rt2_end = max(s.end for s in tick.slices if s.task_name == "rt2")
        assert rt2_end == 13

    def test_overheads_actually_charge(self):
        """Sanity guard: a 2-tick switch cost lengthens occupancy."""
        study = RoverCaseStudy()
        design = study.hydra_c_design()
        default = Simulator.from_design(
            design, SimulationConfig(horizon=20_000)
        ).run()
        charged = Simulator.from_design(
            design,
            SimulationConfig(
                horizon=20_000,
                platform=PlatformModel.parse(overheads="const:2,3"),
            ),
        ).run()
        assert default != charged


class TestClaimInertnessUnderDefault:
    """Under the default protocol, resource claims must be invisible: the
    rover's claim-annotated task set simulates identically to the same task
    set with every claim stripped (the goldens' byte-identity depends on
    this)."""

    def strip_claims(self, taskset: TaskSet) -> TaskSet:
        rt = [
            dataclasses.replace(task, claims=(), priority=None)
            for task in taskset.rt_tasks
        ]
        sec = [
            dataclasses.replace(task, claims=(), priority=None)
            for task in taskset.security_tasks
        ]
        return TaskSet.create(rt, sec)

    def test_claims_inert_without_a_lock_protocol(self):
        annotated = rover_taskset()
        stripped = self.strip_claims(annotated)
        config = SimulationConfig(horizon=15_000)
        allocation = {"navigation": 0, "camera": 1}
        for backend in (Simulator, EventCompressedSimulator):
            with_claims = backend(
                annotated, 2, "semi-partitioned", rt_allocation=allocation,
                config=config,
            ).run()
            without = backend(
                stripped, 2, "semi-partitioned", rt_allocation=allocation,
                config=config,
            ).run()
            assert with_claims == without

    def test_explicit_default_platform_is_the_implicit_one(self):
        design = RoverCaseStudy().hydra_c_design()
        implicit = simulate_design(design, 15_000)
        explicit = simulate_design(design, 15_000, platform=DEFAULT_PLATFORM)
        assert implicit == explicit
