"""Unit tests for :class:`PlatformRuntime` -- the one object both
simulation backends consult for ordering, locking and overhead decisions.

The tests drive the runtime directly with hand-built
:class:`~repro.sim.schedulers.ReadyJob` views, mirroring the call sequence
of a scheduling round: ``begin_round(ready)`` then ``try_dispatch(job)``
per placement, then ``advance(...)`` as progress accrues.
"""

import pytest

from repro.model import RealTimeTask, SecurityTask, TaskSet
from repro.model.tasks import ResourceClaim
from repro.platform import PlatformModel, PlatformRuntime
from repro.platform.runtime import NULL_RUNTIME
from repro.sim.schedulers import ReadyJob


def locked_taskset():
    """Three security tasks with one shared resource and two private ones.

    Priorities after ``TaskSet.create``: rt=0, s-high=1, s-mid=2, s-low=3.
    ``shared`` is claimed by s-high (at progress 4) and s-low (at 0);
    ``private`` belongs to s-mid alone.
    """
    return TaskSet.create(
        [RealTimeTask(name="rt", wcet=1, period=100)],
        [
            SecurityTask(
                name="s-high",
                wcet=20,
                max_period=500,
                claims=(ResourceClaim(resource="shared", start=4, duration=6),),
            ),
            SecurityTask(
                name="s-mid",
                wcet=20,
                max_period=600,
                claims=(ResourceClaim(resource="private", start=2, duration=5),),
            ),
            SecurityTask(
                name="s-low",
                wcet=20,
                max_period=700,
                claims=(ResourceClaim(resource="shared", start=0, duration=8),),
            ),
        ],
    )


def job_for(taskset, name, job_id=None, progress=0, release_time=0):
    task = next(task for task in taskset.all_tasks if task.name == name)
    return ReadyJob(
        job_id=job_id or f"{name}:0",
        task_name=name,
        priority=task.priority,
        is_security=name.startswith("s-"),
        bound_core=None,
        last_core=None,
        release_time=release_time,
        progress=progress,
    )


def runtime_for(protocol, taskset=None, scheduler="rm", overheads="zero"):
    model = PlatformModel.parse(scheduler, protocol, overheads)
    return PlatformRuntime(model, taskset or locked_taskset())


class TestDefaultRuntime:
    def test_null_runtime_is_inert(self):
        job = ReadyJob(
            job_id="x:0",
            task_name="x",
            priority=1,
            is_security=False,
            bound_core=None,
            last_core=None,
            release_time=0,
        )
        assert not NULL_RUNTIME.locking
        assert not NULL_RUNTIME.has_overheads
        assert NULL_RUNTIME.sort_key(job) == job.sort_key
        assert NULL_RUNTIME.try_dispatch(job)
        assert NULL_RUNTIME.switch_in_cost(migrated=True) == 0
        assert NULL_RUNTIME.next_boundary_delta("x", 0, 0) is None

    def test_none_protocol_ignores_claims(self):
        runtime = runtime_for("none")
        assert not runtime.locking
        low = job_for(locked_taskset(), "s-low")
        high = job_for(locked_taskset(), "s-high", progress=4)
        runtime.begin_round([low, high])
        assert runtime.try_dispatch(low)
        assert runtime.try_dispatch(high)  # no lock state, no blocking


class TestLockAcquisition:
    def test_acquired_at_section_start_on_dispatch(self):
        taskset = locked_taskset()
        runtime = runtime_for("pip", taskset)
        assert runtime.locking
        low = job_for(taskset, "s-low")  # section starts at progress 0
        runtime.begin_round([low])
        assert runtime.try_dispatch(low)
        # The resource is now held: a competing job at its own section
        # start must not dispatch, even within the same round.
        high = job_for(taskset, "s-high", progress=4)
        assert not runtime.try_dispatch(high)

    def test_no_acquisition_needed_outside_a_section_start(self):
        taskset = locked_taskset()
        runtime = runtime_for("pip", taskset)
        high = job_for(taskset, "s-high", progress=1)  # before its section
        runtime.begin_round([high])
        assert runtime.try_dispatch(high)
        # Nothing was acquired: s-low can still take the shared resource.
        low = job_for(taskset, "s-low")
        assert runtime.try_dispatch(low)

    def test_holder_redispatches_through_its_own_section(self):
        taskset = locked_taskset()
        runtime = runtime_for("pip", taskset)
        low = job_for(taskset, "s-low")
        runtime.begin_round([low])
        assert runtime.try_dispatch(low)
        # Preempted and re-dispatched at the same progress: still allowed.
        runtime.begin_round([low])
        assert runtime.try_dispatch(low)

    def test_released_at_section_exit_via_advance(self):
        taskset = locked_taskset()
        runtime = runtime_for("pip", taskset)
        low = job_for(taskset, "s-low")
        runtime.begin_round([low])
        assert runtime.try_dispatch(low)
        runtime.advance("s-low:0", "s-low", progress=7)  # still inside [0, 8)
        high = job_for(taskset, "s-high", progress=4)
        runtime.begin_round([high, low])
        assert not runtime.try_dispatch(high)
        runtime.advance("s-low:0", "s-low", progress=8)  # exit reached
        runtime.begin_round([high])
        assert runtime.try_dispatch(high)

    def test_reset_clears_lock_state(self):
        taskset = locked_taskset()
        runtime = runtime_for("pip", taskset)
        low = job_for(taskset, "s-low")
        runtime.begin_round([low])
        assert runtime.try_dispatch(low)
        runtime.reset()
        high = job_for(taskset, "s-high", progress=4)
        runtime.begin_round([high])
        assert runtime.try_dispatch(high)


class TestPriorityInheritance:
    def test_blocked_job_donates_its_key_to_the_holder(self):
        taskset = locked_taskset()
        runtime = runtime_for("pip", taskset)
        low = job_for(taskset, "s-low")
        runtime.begin_round([low])
        assert runtime.try_dispatch(low)
        high = job_for(taskset, "s-high", progress=4)
        runtime.begin_round([high, low])
        assert not runtime.try_dispatch(high)
        # The holder now sorts with the blocked job's (more urgent) key.
        assert runtime.sort_key(low) == high.sort_key
        assert runtime.sort_key(low) < low.sort_key

    def test_boost_never_lowers_the_holders_own_key(self):
        """A *less* urgent waiter must not drag the holder down."""
        taskset = locked_taskset()
        runtime = runtime_for("pip", taskset)
        high = job_for(taskset, "s-high", progress=4)
        runtime.begin_round([high])
        assert runtime.try_dispatch(high)
        low = job_for(taskset, "s-low")
        runtime.begin_round([low, high])
        assert not runtime.try_dispatch(low)
        assert runtime.sort_key(high) == high.sort_key

    def test_boosts_recomputed_each_round(self):
        taskset = locked_taskset()
        runtime = runtime_for("pip", taskset)
        low = job_for(taskset, "s-low")
        runtime.begin_round([low])
        assert runtime.try_dispatch(low)
        high = job_for(taskset, "s-high", progress=4)
        runtime.begin_round([high, low])
        assert runtime.sort_key(low) == high.sort_key
        # Next round the waiter is gone (completed): no boost survives.
        runtime.begin_round([low])
        assert runtime.sort_key(low) == low.sort_key


class TestPriorityCeiling:
    def test_ceiling_blocks_unrelated_acquisition(self):
        """PCP: while s-high's resource is held, s-mid (whose priority does
        not beat the shared ceiling) may not acquire even its *private*
        resource; under PIP it may."""
        taskset = locked_taskset()
        mid = job_for(taskset, "s-mid", progress=2)
        low = job_for(taskset, "s-low")

        pip = runtime_for("pip", taskset)
        pip.begin_round([low])
        assert pip.try_dispatch(low)
        pip.begin_round([mid, low])
        assert pip.try_dispatch(mid)

        pcp = runtime_for("pcp", taskset)
        pcp.begin_round([low])
        assert pcp.try_dispatch(low)
        # ceiling(shared) = priority of s-high = 1 <= priority of s-mid.
        pcp.begin_round([mid, low])
        assert not pcp.try_dispatch(mid)
        # The ceiling-blocked job donates its key to the offending holder.
        assert pcp.sort_key(low) == mid.sort_key

    def test_priority_above_every_ceiling_passes(self):
        """A job strictly more urgent than all held ceilings acquires
        freely -- the classic PCP admission rule."""
        taskset = TaskSet.create(
            [
                RealTimeTask(
                    name="rt-locker",
                    wcet=10,
                    period=100,
                    claims=(ResourceClaim(resource="bus", start=0, duration=4),),
                )
            ],
            [
                SecurityTask(
                    name="s-low",
                    wcet=20,
                    max_period=700,
                    claims=(ResourceClaim(resource="disk", start=0, duration=8),),
                )
            ],
        )
        runtime = runtime_for("pcp", taskset)
        low = job_for(taskset, "s-low")
        runtime.begin_round([low])
        assert runtime.try_dispatch(low)
        # ceiling(disk) = s-low's priority; rt-locker beats it.
        rt = job_for(taskset, "rt-locker", job_id="rt-locker:0")
        runtime.begin_round([rt, low])
        assert runtime.try_dispatch(rt)


class TestOverheads:
    def test_zero_model_charges_nothing(self):
        runtime = runtime_for("none")
        assert not runtime.has_overheads
        assert runtime.switch_in_cost(migrated=False) == 0
        assert runtime.switch_in_cost(migrated=True) == 0

    def test_const_model_charges_switch_and_migration(self):
        runtime = runtime_for("none", overheads="const:2,3")
        assert runtime.has_overheads
        assert runtime.switch_in_cost(migrated=False) == 2
        assert runtime.switch_in_cost(migrated=True) == 5


class TestNextBoundaryDelta:
    def test_deltas_walk_the_section_boundaries(self):
        runtime = runtime_for("pip")
        # s-high claims [4, 10) on "shared".
        assert runtime.next_boundary_delta("s-high", 0, 0) == 4
        assert runtime.next_boundary_delta("s-high", 4, 0) == 6
        assert runtime.next_boundary_delta("s-high", 9, 0) == 1
        assert runtime.next_boundary_delta("s-high", 10, 0) is None

    def test_debt_postpones_the_boundary(self):
        runtime = runtime_for("pip", overheads="const:3")
        assert runtime.next_boundary_delta("s-high", 0, 3) == 7
        assert runtime.next_boundary_delta("s-high", 4, 2) == 8

    def test_claimless_task_has_no_boundaries(self):
        runtime = runtime_for("pip")
        assert runtime.next_boundary_delta("rt", 0, 0) is None
