"""Frozen-default regression pins for the platform-model layer.

Two guarantees, each pinned byte-for-byte:

* The *default* platform (``rm``/``none``/``zero``), spelled out
  explicitly, still reproduces ``benchmarks/campaign_golden.txt`` -- the
  plugin layer added knobs, not behaviour.
* A *non-default* platform is itself deterministic and backend-independent:
  ``benchmarks/campaign_edf_pip_golden.txt`` pins the same campaign under
  banded EDF with PIP resource sharing.  Regenerate after an intentional
  change with ``python -m tests.platform.test_frozen_defaults``.
"""

from pathlib import Path

import pytest

from repro.campaign import CampaignSpec, JitterModel, format_campaign, run_campaign
from repro.experiments.config import ExperimentConfig
from repro.platform import DEFAULT_PLATFORM

BENCHMARKS = Path(__file__).parent.parent.parent / "benchmarks"
DEFAULT_GOLDEN_PATH = BENCHMARKS / "campaign_golden.txt"
EDF_PIP_GOLDEN_PATH = BENCHMARKS / "campaign_edf_pip_golden.txt"

#: The same campaign ``tests/campaign/test_golden_campaign.py`` pins.
GOLDEN_SPEC = dict(
    schemes=None,  # the canonical four
    num_trials=8,
    horizon=45_000,
    seed=2020,
    jitter=JitterModel.uniform(250),
)

#: The non-default pin: banded EDF runtime ordering + PIP over the rover's
#: shared audit log.  Everything else matches the default golden campaign,
#: so a diff between the two files is exactly the platform's effect.
EDF_PIP_PLATFORM = dict(scheduler="edf", protocol="pip", overheads="zero")


def regenerate_edf_pip() -> str:
    result = run_campaign(
        CampaignSpec(backend="fast", **EDF_PIP_PLATFORM, **GOLDEN_SPEC)
    )
    return format_campaign(result) + "\n"


class TestDefaultPlatformFrozen:
    def test_config_defaults_are_the_papers_platform(self):
        for config in (ExperimentConfig(num_cores=2), CampaignSpec()):
            assert config.scheduler == "rm"
            assert config.protocol == "none"
            assert config.overheads == "zero"
            assert config.platform_model == DEFAULT_PLATFORM

    def test_default_fingerprints_carry_the_platform_axes(self):
        fingerprint = CampaignSpec().fingerprint()
        assert fingerprint["scheduler"] == "rm"
        assert fingerprint["protocol"] == "none"
        assert fingerprint["overheads"] == "zero"

    @pytest.mark.slow
    def test_explicit_defaults_reproduce_the_golden_campaign(self):
        """Passing the defaults by name changes nothing: the campaign
        golden pin comes out byte-for-byte."""
        spec = CampaignSpec(
            backend="fast",
            scheduler="rm",
            protocol="none",
            overheads="zero",
            **GOLDEN_SPEC,
        )
        assert format_campaign(run_campaign(spec)) + "\n" == (
            DEFAULT_GOLDEN_PATH.read_text(encoding="utf-8")
        )


class TestEdfPipGoldenPin:
    @pytest.mark.slow
    def test_pin_unchanged(self):
        assert EDF_PIP_GOLDEN_PATH.exists(), (
            f"missing golden pin {EDF_PIP_GOLDEN_PATH}; regenerate it with "
            "python -m tests.platform.test_frozen_defaults"
        )
        assert regenerate_edf_pip() == EDF_PIP_GOLDEN_PATH.read_text(
            encoding="utf-8"
        )

    @pytest.mark.slow
    def test_pin_backend_independent(self):
        """The tick oracle reproduces the EDF/PIP pin byte for byte."""
        result = run_campaign(
            CampaignSpec(backend="tick", **EDF_PIP_PLATFORM, **GOLDEN_SPEC)
        )
        assert format_campaign(result) + "\n" == EDF_PIP_GOLDEN_PATH.read_text(
            encoding="utf-8"
        )

    @pytest.mark.slow
    def test_pin_survives_the_batch_backends_fallback(self):
        """Under the batch backend a non-default platform is outside the
        lockstep envelope, so every trial transparently falls back to the
        event-compressed engine -- the pin still reproduces byte for
        byte."""
        result = run_campaign(
            CampaignSpec(backend="batch", **EDF_PIP_PLATFORM, **GOLDEN_SPEC)
        )
        assert format_campaign(result) + "\n" == EDF_PIP_GOLDEN_PATH.read_text(
            encoding="utf-8"
        )

    def test_pin_differs_from_the_default_campaign(self):
        """The two pins must not be byte-identical -- if they were, the
        non-default platform would be silently inert."""
        assert EDF_PIP_GOLDEN_PATH.read_bytes() != DEFAULT_GOLDEN_PATH.read_bytes()


if __name__ == "__main__":  # pragma: no cover - regeneration helper
    EDF_PIP_GOLDEN_PATH.write_text(regenerate_edf_pip(), encoding="utf-8")
    print(f"wrote {EDF_PIP_GOLDEN_PATH}")
