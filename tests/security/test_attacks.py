"""Unit tests for attack generation."""

import numpy as np
import pytest

from repro.security.attacks import Attack, AttackScenario, generate_attacks
from repro.security.monitors import SecurityMonitor


def monitors():
    return [
        SecurityMonitor("tripwire", coverage_units=8, wcet=100),
        SecurityMonitor("kmod", coverage_units=4, wcet=20),
    ]


class TestAttack:
    def test_validation(self):
        with pytest.raises(ValueError):
            Attack("a", "m", inject_time=-1, compromised_unit=0)
        with pytest.raises(ValueError):
            Attack("a", "m", inject_time=0, compromised_unit=-1)


class TestScenario:
    def test_for_monitor_filtering(self):
        scenario = AttackScenario(
            [
                Attack("a1", "tripwire", 10, 0),
                Attack("a2", "kmod", 20, 1),
            ]
        )
        assert len(scenario) == 2
        assert [a.name for a in scenario.for_monitor("kmod")] == ["a2"]


class TestGeneration:
    def test_one_attack_per_monitor(self):
        scenario = generate_attacks(monitors(), horizon=1000, rng=np.random.default_rng(0))
        assert len(scenario) == 2
        assert {a.monitor_task for a in scenario} == {"tripwire", "kmod"}

    def test_injection_window_respected(self):
        scenario = generate_attacks(
            monitors(),
            horizon=1000,
            rng=np.random.default_rng(1),
            latest_injection_fraction=0.25,
        )
        assert all(a.inject_time < 250 for a in scenario)

    def test_compromised_units_within_coverage(self):
        rng = np.random.default_rng(2)
        for _ in range(20):
            scenario = generate_attacks(monitors(), horizon=500, rng=rng)
            for attack, monitor in zip(scenario, monitors()):
                assert 0 <= attack.compromised_unit < monitor.coverage_units

    def test_determinism(self):
        a = generate_attacks(monitors(), 1000, rng=np.random.default_rng(3))
        b = generate_attacks(monitors(), 1000, rng=np.random.default_rng(3))
        assert [x.inject_time for x in a] == [x.inject_time for x in b]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            generate_attacks(monitors(), horizon=0)
        with pytest.raises(ValueError):
            generate_attacks(monitors(), horizon=10, latest_injection_fraction=0.0)
