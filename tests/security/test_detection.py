"""Unit tests for detection-latency evaluation."""

import pytest

from repro.security.attacks import Attack, AttackScenario
from repro.security.detection import (
    DetectionResult,
    detection_time_for_attack,
    evaluate_detection,
)
from repro.security.monitors import SecurityMonitor
from repro.sim.trace import ExecutionSlice, SimulationTrace


def make_trace(slices):
    trace = SimulationTrace(horizon=1000, num_cores=1)
    trace.slices.extend(slices)
    return trace


MONITOR = SecurityMonitor("ids", coverage_units=4, wcet=8)  # 2 ticks per unit


class TestDetectionTime:
    def test_detected_within_running_scan(self):
        # One uninterrupted job covering [10, 18); unit 2 finishes at progress 6
        # i.e. wall-clock 16.
        trace = make_trace([ExecutionSlice("ids#0", "ids", 0, 10, 18, 0)])
        attack = Attack("a", "ids", inject_time=12, compromised_unit=2)
        assert detection_time_for_attack(trace, MONITOR, attack) == 16

    def test_attack_after_unit_swept_waits_for_next_pass(self):
        trace = make_trace(
            [
                ExecutionSlice("ids#0", "ids", 0, 0, 8, 0),
                ExecutionSlice("ids#1", "ids", 0, 50, 58, 0),
            ]
        )
        # Unit 0 is swept during [0,2) of job 0; an attack at t=3 on unit 0
        # must wait for job 1, which reaches progress 2 at wall-clock 52.
        attack = Attack("a", "ids", inject_time=3, compromised_unit=0)
        assert detection_time_for_attack(trace, MONITOR, attack) == 52

    def test_preempted_scan_detects_later(self):
        # The same job split by preemption: progress 6 is only reached in the
        # second slice.
        trace = make_trace(
            [
                ExecutionSlice("ids#0", "ids", 0, 10, 14, 0),
                ExecutionSlice("ids#0", "ids", 0, 30, 34, 4),
            ]
        )
        attack = Attack("a", "ids", inject_time=11, compromised_unit=2)
        assert detection_time_for_attack(trace, MONITOR, attack) == 32

    def test_undetected_when_no_later_pass(self):
        trace = make_trace([ExecutionSlice("ids#0", "ids", 0, 0, 8, 0)])
        attack = Attack("a", "ids", inject_time=900, compromised_unit=1)
        assert detection_time_for_attack(trace, MONITOR, attack) is None

    def test_attack_during_sweep_of_its_unit_is_missed_by_that_sweep(self):
        # Unit 3 is being swept during progress (6, 8]; the attack lands while
        # that sweep is in progress, so only a later pass can catch it -- and
        # there is none.
        trace = make_trace([ExecutionSlice("ids#0", "ids", 0, 0, 8, 0)])
        attack = Attack("a", "ids", inject_time=7, compromised_unit=3)
        assert detection_time_for_attack(trace, MONITOR, attack) is None

    def test_wrong_monitor_rejected(self):
        trace = make_trace([])
        attack = Attack("a", "other", inject_time=0, compromised_unit=0)
        with pytest.raises(ValueError):
            detection_time_for_attack(trace, MONITOR, attack)

    def test_out_of_range_unit_rejected(self):
        trace = make_trace([])
        attack = Attack("a", "ids", inject_time=0, compromised_unit=10)
        with pytest.raises(ValueError):
            detection_time_for_attack(trace, MONITOR, attack)


class TestEvaluateDetection:
    def test_results_and_latency(self):
        trace = make_trace([ExecutionSlice("ids#0", "ids", 0, 10, 18, 0)])
        scenario = AttackScenario([Attack("a", "ids", inject_time=12, compromised_unit=2)])
        results = evaluate_detection(trace, [MONITOR], scenario)
        assert len(results) == 1
        assert results[0].detected
        assert results[0].detection_time == 16
        assert results[0].latency == 4

    def test_unknown_monitor_raises(self):
        scenario = AttackScenario([Attack("a", "ghost", 0, 0)])
        with pytest.raises(KeyError):
            evaluate_detection(make_trace([]), [MONITOR], scenario)

    def test_undetected_result(self):
        scenario = AttackScenario([Attack("a", "ids", inject_time=500, compromised_unit=0)])
        results = evaluate_detection(make_trace([]), [MONITOR], scenario)
        assert not results[0].detected
        assert results[0].latency is None
