"""Unit tests for the synthetic security monitors."""

import pytest

from repro.model import SecurityTask
from repro.security.monitors import FileIntegrityMonitor, KernelModuleChecker, SecurityMonitor


class TestScanGeometry:
    def test_ticks_to_scan_monotone_and_complete(self):
        monitor = SecurityMonitor("m", coverage_units=4, wcet=10)
        ticks = [monitor.ticks_to_scan(u) for u in range(5)]
        assert ticks == [0, 3, 5, 8, 10]

    def test_unit_scanned_at_is_inverse_of_ticks_to_scan(self):
        monitor = SecurityMonitor("m", coverage_units=7, wcet=23)
        for unit in range(monitor.coverage_units):
            threshold = monitor.ticks_to_scan(unit + 1)
            assert monitor.unit_scanned_at(threshold) >= unit
            assert monitor.unit_scanned_at(threshold - 1) < unit

    def test_unit_scanned_examples(self):
        monitor = FileIntegrityMonitor("tw", coverage_units=4, wcet=10)
        assert monitor.unit_scanned_at(0) == -1
        assert monitor.unit_scanned_at(10) == 3
        assert monitor.unit_scanned_at(999) == 3

    def test_single_unit_monitor(self):
        monitor = KernelModuleChecker("k", coverage_units=1, wcet=5)
        assert monitor.ticks_to_scan(1) == 5
        assert monitor.unit_scanned_at(4) == -1
        assert monitor.unit_scanned_at(5) == 0

    def test_more_units_than_ticks(self):
        monitor = SecurityMonitor("m", coverage_units=10, wcet=3)
        assert monitor.ticks_to_scan(10) == 3
        assert monitor.unit_scanned_at(3) == 9

    def test_validation(self):
        with pytest.raises(ValueError):
            SecurityMonitor("m", coverage_units=0, wcet=5)
        with pytest.raises(ValueError):
            SecurityMonitor("m", coverage_units=5, wcet=0)
        with pytest.raises(ValueError):
            SecurityMonitor("m", coverage_units=5, wcet=5).ticks_to_scan(-1)
        with pytest.raises(ValueError):
            SecurityMonitor("m", coverage_units=5, wcet=5).unit_scanned_at(-1)


class TestForTask:
    def test_matches_task_parameters(self):
        task = SecurityTask(name="tw", wcet=100, max_period=1000, coverage_units=25)
        monitor = FileIntegrityMonitor.for_task(task)
        assert monitor.task_name == "tw"
        assert monitor.wcet == 100
        assert monitor.coverage_units == 25
        assert "tw" in monitor.description
