"""Unit tests for the reactive monitor-chain extension."""

import pytest

from repro.security.attacks import Attack
from repro.security.dependency import MonitorChain, ReactiveMonitorPolicy
from repro.security.detection import DetectionResult


def detection(monitor, time):
    return DetectionResult(
        attack=Attack("a", monitor, inject_time=0, compromised_unit=0),
        detected=time is not None,
        detection_time=time,
    )


class TestMonitorChain:
    def test_validation(self):
        with pytest.raises(ValueError):
            MonitorChain(head="", followers=["x"])
        with pytest.raises(ValueError):
            MonitorChain(head="x", followers=["x"])


class TestReactivePolicy:
    def test_chain_completion_times(self):
        policy = ReactiveMonitorPolicy(
            [MonitorChain(head="tripwire", followers=["syscall-check", "net-check"])],
            periods={"tripwire": 1000, "syscall-check": 100, "net-check": 200},
        )
        completions = policy.completions([detection("tripwire", 5000)])
        assert len(completions) == 1
        chain = completions[0]
        assert chain.trigger_time == 5000
        assert chain.stage_completion_times["syscall-check"] == 5200
        assert chain.stage_completion_times["net-check"] == 5600
        assert chain.chain_latency == 600

    def test_no_detection_no_chain(self):
        policy = ReactiveMonitorPolicy(
            [MonitorChain(head="tripwire", followers=["syscall-check"])],
            periods={"tripwire": 1000, "syscall-check": 100},
        )
        assert policy.completions([detection("tripwire", None)]) == []
        assert policy.worst_chain_latency([detection("tripwire", None)]) is None

    def test_shorter_periods_shorten_chains(self):
        chains = [MonitorChain(head="m", followers=["f"])]
        fast = ReactiveMonitorPolicy(chains, {"m": 100, "f": 50})
        slow = ReactiveMonitorPolicy(chains, {"m": 100, "f": 500})
        trigger = [detection("m", 1000)]
        assert fast.worst_chain_latency(trigger) < slow.worst_chain_latency(trigger)

    def test_missing_period_rejected(self):
        with pytest.raises(KeyError):
            ReactiveMonitorPolicy(
                [MonitorChain(head="m", followers=["f"])], periods={"m": 100}
            )
