"""Unit tests for the HydraC facade and SystemDesign."""

import pytest

from repro.core.framework import HydraC, SchedulingPolicy, SystemDesign
from repro.errors import UnschedulableError
from repro.model import Platform, RealTimeTask, SecurityTask, TaskSet


class TestHydraCDesign:
    def test_rover_design(self, rover, rover_allocation, dual_core):
        design = HydraC(dual_core).design(rover, rover_allocation)
        assert design.schedulable
        assert design.scheme == "HYDRA-C"
        assert design.policy is SchedulingPolicy.SEMI_PARTITIONED
        assert design.security_allocation is None
        assert design.security_periods() == {"tripwire": 7582, "kmod-checker": 2783}
        assert design.rt_allocation.as_dict() == rover_allocation

    def test_auto_rt_partitioning(self, rover, dual_core):
        design = HydraC(dual_core).design(rover)
        assert design.schedulable
        assert set(design.rt_allocation.as_dict()) == {"navigation", "camera"}

    def test_rt_response_times_reported(self, rover, rover_allocation, dual_core):
        design = HydraC(dual_core).design(rover, rover_allocation)
        assert design.response_times["navigation"] == 240
        assert design.response_times["camera"] == 1120

    def test_unschedulable_design(self, dual_core):
        taskset = TaskSet.create(
            [RealTimeTask(name="a", wcet=9, period=10), RealTimeTask(name="b", wcet=9, period=10)],
            [SecurityTask(name="ids", wcet=80, max_period=100)],
        )
        design = HydraC(dual_core).design(taskset, {"a": 0, "b": 1})
        assert not design.schedulable
        assert design.metadata["unschedulable_task"] == "ids"
        with pytest.raises(UnschedulableError):
            design.require_schedulable()

    def test_broken_legacy_partition_raises(self, dual_core):
        taskset = TaskSet.create(
            [RealTimeTask(name="a", wcet=9, period=10), RealTimeTask(name="b", wcet=9, period=10)],
            [],
        )
        with pytest.raises(UnschedulableError, match="legacy RT tasks"):
            HydraC(dual_core).design(taskset, {"a": 0, "b": 0})

    def test_is_schedulable(self, rover, rover_allocation, dual_core):
        assert HydraC(dual_core).is_schedulable(rover, rover_allocation)

    def test_is_schedulable_false_for_broken_partition(self, dual_core):
        taskset = TaskSet.create(
            [RealTimeTask(name="a", wcet=9, period=10), RealTimeTask(name="b", wcet=9, period=10)],
            [],
        )
        assert not HydraC(dual_core).is_schedulable(taskset, {"a": 0, "b": 0})


class TestSystemDesign:
    def test_require_schedulable_returns_self(self, rover, rover_allocation, dual_core):
        design = HydraC(dual_core).design(rover, rover_allocation)
        assert design.require_schedulable() is design
