"""Unit and property tests for the HYDRA-C response-time analysis (Eq. 2-8)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis import (
    CarryInStrategy,
    RtWorkloadCache,
    SecurityTaskState,
    analyze_security_tasks,
    hydra_c_taskset_schedulable,
    rt_interference,
    security_response_time,
)
from repro.model import Platform, RealTimeTask, SecurityTask, TaskSet
from repro.schedulability.uniprocessor import (
    UniprocessorTask,
    uniprocessor_response_time,
)


def rt(name, wcet, period):
    return RealTimeTask(name=name, wcet=wcet, period=period)


class TestRtInterference:
    def test_matches_manual_sum(self):
        by_core = {0: [rt("a", 2, 10)], 1: [rt("b", 3, 12)]}
        # window 12, wcet 4: core0 workload = 2 + min(2,2) = 4; core1 = 3 + 0 = 3
        # cap = 12-4+1 = 9 -> no clamping
        assert rt_interference(by_core, 12, 4) == 4 + 3

    def test_per_core_clamping(self):
        by_core = {0: [rt("a", 9, 10)], 1: [rt("b", 1, 100)]}
        # window 10, wcet 8: cap = 3; core0 workload 9 -> 3, core1 1 -> 1
        assert rt_interference(by_core, 10, 8) == 4

    def test_cache_agrees_with_direct_computation(self):
        by_core = {0: [rt("a", 2, 7), rt("b", 3, 11)], 1: [rt("c", 5, 13)]}
        cache = RtWorkloadCache(by_core)
        for window in range(0, 60, 7):
            for wcet in (1, 4, 9):
                assert cache.interference(window, wcet) == rt_interference(
                    by_core, window, wcet
                )

    def test_empty_platform(self):
        assert rt_interference({0: [], 1: []}, 50, 5) == 0


class TestSecurityResponseTime:
    def test_no_interference_equals_wcet(self):
        assert (
            security_response_time(
                5, 100, {0: [], 1: []}, [], num_cores=2
            )
            == 5
        )

    def test_single_core_reduces_to_uniprocessor(self):
        """On one core with only RT interference the semi-partitioned analysis
        must agree with the classic uniprocessor analysis."""
        rts = [rt("a", 2, 10), rt("b", 3, 14)]
        expected = uniprocessor_response_time(
            4,
            [UniprocessorTask(t.name, t.wcet, t.period) for t in rts],
            limit=1000,
        )
        observed = security_response_time(4, 1000, {0: rts}, [], num_cores=1)
        assert observed == expected

    def test_rover_tripwire_value(self):
        by_core = {0: [rt("navigation", 240, 500)], 1: [rt("camera", 1120, 5000)]}
        assert (
            security_response_time(5342, 10_000, by_core, [], num_cores=2) == 7582
        )

    def test_unschedulable_returns_none(self):
        by_core = {0: [rt("a", 9, 10)], 1: [rt("b", 9, 10)]}
        assert security_response_time(50, 200, by_core, [], num_cores=2) is None

    def test_wcet_above_limit_returns_none(self):
        assert security_response_time(10, 5, {0: []}, [], num_cores=1) is None

    def test_higher_priority_security_interference_increases_response(self):
        by_core = {0: [rt("a", 2, 10)], 1: []}
        alone = security_response_time(4, 500, by_core, [], num_cores=2)
        hp = [SecurityTaskState(name="hp", wcet=6, period=20, response_time=8)]
        with_hp = security_response_time(4, 500, by_core, hp, num_cores=2)
        assert with_hp >= alone

    def test_greedy_never_below_exact(self):
        by_core = {0: [rt("a", 3, 9)], 1: [rt("b", 4, 15)]}
        hp = [
            SecurityTaskState(name="h1", wcet=2, period=30, response_time=5),
            SecurityTaskState(name="h2", wcet=4, period=40, response_time=9),
            SecurityTaskState(name="h3", wcet=3, period=50, response_time=11),
        ]
        exact = security_response_time(
            5, 1000, by_core, hp, 2, strategy=CarryInStrategy.EXACT
        )
        greedy = security_response_time(
            5, 1000, by_core, hp, 2, strategy=CarryInStrategy.GREEDY
        )
        assert greedy >= exact

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            security_response_time(0, 10, {0: []}, [], 1)
        with pytest.raises(ValueError):
            security_response_time(1, 0, {0: []}, [], 1)
        with pytest.raises(ValueError):
            security_response_time(1, 10, {0: []}, [], 0)

    @given(
        rt_wcet=st.integers(1, 5),
        rt_gap=st.integers(1, 20),
        sec_wcet=st.integers(1, 10),
        cores=st.integers(1, 4),
    )
    @settings(max_examples=100, deadline=None)
    def test_response_at_least_wcet(self, rt_wcet, rt_gap, sec_wcet, cores):
        by_core = {i: [rt(f"r{i}", rt_wcet, rt_wcet + rt_gap)] for i in range(cores)}
        response = security_response_time(sec_wcet, 10_000, by_core, [], cores)
        if response is not None:
            assert response >= sec_wcet

    @given(extra_period=st.integers(0, 50))
    @settings(max_examples=60, deadline=None)
    def test_longer_hp_period_never_increases_response(self, extra_period):
        """Monotonicity that period selection's binary search relies on."""
        by_core = {0: [rt("a", 2, 10)], 1: [rt("b", 3, 12)]}
        base = SecurityTaskState(name="hp", wcet=5, period=20, response_time=9)
        longer = SecurityTaskState(
            name="hp", wcet=5, period=20 + extra_period, response_time=9
        )
        r_base = security_response_time(4, 2000, by_core, [base], 2)
        r_longer = security_response_time(4, 2000, by_core, [longer], 2)
        assert r_longer <= r_base


class TestSecurityTaskState:
    def test_validation(self):
        with pytest.raises(ValueError):
            SecurityTaskState(name="x", wcet=0, period=10, response_time=1)
        with pytest.raises(ValueError):
            SecurityTaskState(name="x", wcet=5, period=10, response_time=4)


class TestTasksetLevelHelpers:
    def test_analyze_security_tasks_order_and_values(self, simple_taskset, dual_core):
        allocation = {"rt-fast": 0, "rt-slow": 1}
        responses = analyze_security_tasks(simple_taskset, allocation, dual_core)
        assert set(responses) == {"ids-a", "ids-b"}
        assert all(value is not None for value in responses.values())
        # The lower-priority task suffers at least as much interference.
        assert responses["ids-b"] >= simple_taskset.security_task("ids-b").wcet

    def test_analyze_with_period_overrides(self, simple_taskset, dual_core):
        allocation = {"rt-fast": 0, "rt-slow": 1}
        base = analyze_security_tasks(simple_taskset, allocation, dual_core)
        shorter = analyze_security_tasks(
            simple_taskset, allocation, dual_core, periods={"ids-a": 6}
        )
        # A shorter period for the higher-priority task cannot help ids-b.
        assert shorter["ids-b"] >= base["ids-b"]

    def test_missing_allocation_rejected(self, simple_taskset, dual_core):
        with pytest.raises(KeyError):
            analyze_security_tasks(simple_taskset, {"rt-fast": 0}, dual_core)

    def test_hydra_c_schedulable_on_simple_taskset(self, simple_taskset, dual_core):
        assert hydra_c_taskset_schedulable(
            simple_taskset, {"rt-fast": 0, "rt-slow": 1}, dual_core
        )

    def test_hydra_c_rejects_overload(self, dual_core):
        taskset = TaskSet.create(
            [rt("a", 9, 10), rt("b", 9, 10)],
            [SecurityTask(name="ids", wcet=50, max_period=100)],
        )
        assert not hydra_c_taskset_schedulable(taskset, {"a": 0, "b": 1}, dual_core)
