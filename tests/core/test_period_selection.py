"""Unit tests for period selection (Algorithms 1 and 2)."""

import pytest

from repro.core.analysis import analyze_security_tasks
from repro.core.period_selection import (
    PeriodSelector,
    SearchMode,
    minimum_feasible_period,
    select_periods,
)
from repro.errors import UnschedulableError
from repro.model import Platform, RealTimeTask, SecurityTask, TaskSet


def small_taskset():
    return TaskSet.create(
        [RealTimeTask(name="rt", wcet=2, period=10)],
        [
            SecurityTask(name="hi", wcet=3, max_period=60),
            SecurityTask(name="lo", wcet=4, max_period=120),
        ],
    )


class TestSelectPeriods:
    def test_simple_case_selects_minimum_periods(self, dual_core):
        result = select_periods(small_taskset(), {"rt": 0}, dual_core)
        assert result.schedulable
        # Both tasks fit at their response times: periods equal WCRTs.
        assert result.periods["hi"] == result.response_times["hi"]
        assert result.periods["lo"] == result.response_times["lo"]

    def test_periods_within_bounds(self, dual_core, simple_taskset):
        result = select_periods(simple_taskset, {"rt-fast": 0, "rt-slow": 1}, dual_core)
        assert result.schedulable
        for task in simple_taskset.security_tasks:
            assert (
                result.response_times[task.name]
                <= result.periods[task.name]
                <= task.max_period
            )

    def test_selected_periods_keep_every_task_schedulable(self, dual_core, simple_taskset):
        """Re-analysing with the selected periods must confirm R_s <= T_s."""
        allocation = {"rt-fast": 0, "rt-slow": 1}
        result = select_periods(simple_taskset, allocation, dual_core)
        adapted = result.apply(simple_taskset)
        responses = analyze_security_tasks(adapted, allocation, dual_core)
        for task in adapted.security_tasks:
            assert responses[task.name] is not None
            assert responses[task.name] <= task.period

    def test_unschedulable_taskset_reported(self, dual_core):
        taskset = TaskSet.create(
            [RealTimeTask(name="a", wcet=9, period=10), RealTimeTask(name="b", wcet=9, period=10)],
            [SecurityTask(name="ids", wcet=80, max_period=100)],
        )
        result = select_periods(taskset, {"a": 0, "b": 1}, dual_core)
        assert not result.schedulable
        assert result.unschedulable_task == "ids"
        assert result.periods == {}

    def test_apply_raises_when_unschedulable(self, dual_core):
        taskset = TaskSet.create(
            [RealTimeTask(name="a", wcet=9, period=10), RealTimeTask(name="b", wcet=9, period=10)],
            [SecurityTask(name="ids", wcet=80, max_period=100)],
        )
        result = select_periods(taskset, {"a": 0, "b": 1}, dual_core)
        with pytest.raises(UnschedulableError):
            result.apply(taskset)

    def test_rover_values(self, rover, rover_allocation, dual_core):
        result = select_periods(rover, rover_allocation, dual_core)
        assert result.schedulable
        assert result.periods["tripwire"] == 7582
        assert result.periods["kmod-checker"] == 2783

    def test_linear_and_binary_search_agree(self, dual_core, simple_taskset):
        allocation = {"rt-fast": 0, "rt-slow": 1}
        binary = select_periods(
            simple_taskset, allocation, dual_core, search_mode=SearchMode.BINARY
        )
        linear = select_periods(
            simple_taskset, allocation, dual_core, search_mode=SearchMode.LINEAR
        )
        assert binary.periods == linear.periods

    def test_binary_search_uses_fewer_analysis_calls(self, dual_core):
        # A tight lower-priority task pushes the minimum feasible period of
        # the higher-priority one well above its response time, so the linear
        # scan has to walk a long stretch of infeasible candidates.
        taskset = TaskSet.create(
            [RealTimeTask(name="a", wcet=5, period=10), RealTimeTask(name="b", wcet=5, period=10)],
            [
                SecurityTask(name="hi", wcet=10, max_period=300),
                SecurityTask(name="lo", wcet=40, max_period=100),
            ],
        )
        allocation = {"a": 0, "b": 1}
        binary = select_periods(taskset, allocation, dual_core, search_mode=SearchMode.BINARY)
        linear = select_periods(taskset, allocation, dual_core, search_mode=SearchMode.LINEAR)
        assert binary.periods == linear.periods
        assert binary.analysis_calls < linear.analysis_calls

    def test_no_security_tasks(self, dual_core):
        taskset = TaskSet.create([RealTimeTask(name="rt", wcet=2, period=10)], [])
        result = select_periods(taskset, {"rt": 0}, dual_core)
        assert result.schedulable
        assert result.periods == {}

    def test_missing_rt_allocation_rejected(self, dual_core):
        with pytest.raises(KeyError):
            select_periods(small_taskset(), {}, dual_core)


class TestMinimumFeasiblePeriod:
    def test_single_task(self, dual_core):
        taskset = TaskSet.create(
            [RealTimeTask(name="rt", wcet=2, period=10)],
            [SecurityTask(name="ids", wcet=3, max_period=60)],
        )
        assert minimum_feasible_period(taskset, {"rt": 0}, dual_core, "ids") == 3

    def test_respects_lower_priority_schedulability(self, dual_core):
        # A tight lower-priority task forces the higher-priority period up.
        taskset = TaskSet.create(
            [RealTimeTask(name="a", wcet=5, period=10), RealTimeTask(name="b", wcet=5, period=10)],
            [
                SecurityTask(name="hi", wcet=10, max_period=300),
                SecurityTask(name="lo", wcet=40, max_period=100),
            ],
        )
        period = minimum_feasible_period(taskset, {"a": 0, "b": 1}, dual_core, "hi")
        assert period is not None
        # Running `hi` at its own response time would starve `lo`; check the
        # chosen period indeed keeps `lo` schedulable.
        responses = analyze_security_tasks(
            taskset, {"a": 0, "b": 1}, dual_core, periods={"hi": period}
        )
        assert responses["lo"] is not None

    def test_unknown_task_rejected(self, dual_core):
        with pytest.raises(KeyError):
            minimum_feasible_period(small_taskset(), {"rt": 0}, dual_core, "ghost")

    def test_unschedulable_returns_none(self, dual_core):
        taskset = TaskSet.create(
            [RealTimeTask(name="a", wcet=9, period=10), RealTimeTask(name="b", wcet=9, period=10)],
            [SecurityTask(name="ids", wcet=80, max_period=100)],
        )
        assert (
            minimum_feasible_period(taskset, {"a": 0, "b": 1}, dual_core, "ids") is None
        )
