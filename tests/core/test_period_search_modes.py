"""Seeded randomized equivalence of Algorithm 2's search modes.

Algorithm 2's binary search is sound only because feasibility is monotone
in the candidate period: lengthening a task's period can only reduce the
interference it imposes on lower-priority security tasks.  The linear scan
makes no such assumption -- it simply returns the first feasible candidate
-- so if the monotonicity assumption ever broke (e.g. through a regression
in the carry-in handling, where the Eq. 4 carry-in bound is *not* globally
monotone in the period), binary and linear search would disagree.

This suite pins the assumption over hundreds of generated task sets: both
modes must select *identical* periods (and agree on schedulability) on
every set.  Task parameters are kept small so the linear scan stays cheap.
"""

import numpy as np
import pytest

from repro.core.period_selection import SearchMode, select_periods
from repro.errors import AllocationError
from repro.model import Platform, RealTimeTask, SecurityTask, TaskSet
from repro.partitioning.heuristics import partition_rt_tasks

#: (number of task sets, base seed) per chunk; 4 x 60 = 240 >= 200 sets.
CHUNKS = [(60, 1000), (60, 2000), (60, 3000), (60, 4000)]


def random_small_taskset(rng: np.random.Generator) -> TaskSet:
    """A compact task set whose linear period scan is only tens of steps."""
    num_rt = int(rng.integers(2, 6))
    num_security = int(rng.integers(1, 5))
    rt_tasks = []
    for index in range(num_rt):
        period = int(rng.integers(8, 48))
        wcet = int(rng.integers(1, max(2, period // 4)))
        rt_tasks.append(
            RealTimeTask(name=f"rt{index}", wcet=wcet, period=period)
        )
    security_tasks = []
    for index in range(num_security):
        max_period = int(rng.integers(40, 160))
        wcet = int(rng.integers(1, 6))
        security_tasks.append(
            SecurityTask(name=f"sec{index}", wcet=wcet, max_period=max_period)
        )
    return TaskSet.create(rt_tasks, security_tasks)


@pytest.mark.parametrize(("count", "base_seed"), CHUNKS)
def test_binary_and_linear_search_select_identical_periods(count, base_seed):
    platform = Platform(num_cores=2)
    rng = np.random.default_rng(base_seed)
    compared = 0
    schedulable_compared = 0
    while compared < count:
        taskset = random_small_taskset(rng)
        try:
            allocation = partition_rt_tasks(taskset, platform)
        except AllocationError:
            continue
        compared += 1
        binary = select_periods(
            taskset,
            allocation.mapping,
            platform,
            search_mode=SearchMode.BINARY,
        )
        linear = select_periods(
            taskset,
            allocation.mapping,
            platform,
            search_mode=SearchMode.LINEAR,
        )
        assert binary.schedulable == linear.schedulable
        assert binary.periods == linear.periods
        assert binary.response_times == linear.response_times
        assert binary.unschedulable_task == linear.unschedulable_task
        if binary.schedulable:
            schedulable_compared += 1
            for task in taskset.security_tasks:
                assert (
                    task.wcet
                    <= binary.periods[task.name]
                    <= task.max_period
                )
    # The comparison must exercise real period selections, not only
    # trivially unschedulable sets.
    assert schedulable_compared >= count // 2
