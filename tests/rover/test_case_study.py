"""Integration tests for the rover case study (Fig. 5 substrate)."""

import pytest

from repro.rover.case_study import (
    RoverCaseStudy,
    rover_monitors,
    rover_rt_allocation,
    rover_taskset,
)


class TestRoverConfiguration:
    def test_taskset_matches_paper_parameters(self):
        taskset = rover_taskset()
        nav = taskset.rt_task("navigation")
        camera = taskset.rt_task("camera")
        assert (nav.wcet, nav.period) == (240, 500)
        assert (camera.wcet, camera.period) == (1120, 5000)
        tripwire = taskset.security_task("tripwire")
        kmod = taskset.security_task("kmod-checker")
        assert (tripwire.wcet, tripwire.max_period) == (5342, 10_000)
        assert (kmod.wcet, kmod.max_period) == (223, 10_000)

    def test_utilization_matches_paper(self):
        taskset = rover_taskset()
        assert taskset.rt_utilization == pytest.approx(0.704, abs=1e-3)
        assert taskset.security_min_utilization == pytest.approx(0.5565, abs=1e-3)

    def test_allocation_and_monitors(self):
        assert rover_rt_allocation() == {"navigation": 0, "camera": 1}
        monitors = rover_monitors()
        assert {m.task_name for m in monitors} == {"tripwire", "kmod-checker"}


class TestRoverComparison:
    @pytest.fixture(scope="class")
    def comparison(self):
        study = RoverCaseStudy(horizon=30_000, num_trials=4, seed=11)
        return study.run_comparison()

    def test_both_schemes_present(self, comparison):
        assert set(comparison.schemes()) == {"HYDRA-C", "HYDRA"}
        assert all(len(trials) == 4 for trials in comparison.trials.values())

    def test_all_attacks_detected(self, comparison):
        for trials in comparison.trials.values():
            for trial in trials:
                assert trial.all_detected

    def test_hydra_c_detects_faster(self, comparison):
        """The paper's headline claim (Fig. 5a): HYDRA-C detects intrusions
        faster than fully partitioned HYDRA on the rover workload."""
        assert comparison.detection_speedup("HYDRA-C", "HYDRA") > 0

    def test_hydra_c_migrates_and_pays_context_switches(self, comparison):
        """Fig. 5b: migration makes HYDRA-C switch contexts at least as often."""
        assert comparison.context_switch_ratio("HYDRA-C", "HYDRA") >= 1.0
        assert all(
            trial.migrations > 0 for trial in comparison.trials["HYDRA-C"]
        )
        assert all(trial.migrations == 0 for trial in comparison.trials["HYDRA"])

    def test_summary_rows(self, comparison):
        rows = comparison.summary_rows()
        assert len(rows) == 2
        assert {row["scheme"] for row in rows} == {"HYDRA-C", "HYDRA"}


class TestValidation:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RoverCaseStudy(horizon=0)
        with pytest.raises(ValueError):
            RoverCaseStudy(num_trials=0)
