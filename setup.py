"""Package metadata for the HYDRA-C reproduction.

Plain ``setup.py`` (no ``pyproject.toml``) so ``pip install -e .`` works on
minimal offline environments whose setuptools predates PEP 660
editable-install support (no ``wheel`` package available).

The core package is dependency-light on purpose: numpy is the only hard
runtime dependency, and the exact RTA kernels run pure-python by default.
The **compiled** extra (``pip install .[compiled]``) adds cffi, which --
together with a system C compiler -- unlocks the compiled fixed-point
kernel tier (:mod:`repro.rta.compiled`).  The extra is optional
everywhere: without it (or without a compiler) every surface falls back to
the byte-identical pure-python tier, and tier-1 CI deliberately runs
without it.  ``hydra-c kernels`` reports which tiers the current machine
can actually build.
"""

from setuptools import find_packages, setup

setup(
    name="hydra-c-repro",
    version="0.7.0",
    description=(
        "Reproduction of HYDRA-C (DATE 2020): integrated design of "
        "security monitoring periods for multicore real-time systems"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={
        # Compiled Eq. 1/7 fixed-point kernel tier (cffi API mode +
        # system C compiler); optional, pure-python fallback otherwise.
        "compiled": ["cffi"],
    },
    entry_points={
        "console_scripts": ["hydra-c=repro.cli:main"],
    },
)
