"""Legacy setup shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works on minimal offline environments whose setuptools
predates PEP 660 editable-install support (no ``wheel`` package available).
"""

from setuptools import setup

setup()
